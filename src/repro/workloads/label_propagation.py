"""Community detection by label propagation (paper Section II's
"community detection" [31], GPU-accelerated label propagation).

Synchronous label propagation: each vertex adopts the most frequent label
among its neighbours.  Reading ``labels_curr[neighbour]`` is the repeating
irregular gather; unlike PageRank the *data* converges (labels stop
changing) while the access *pattern* stays fixed — exactly the situation
RnR's record/replay exploits.
"""

from __future__ import annotations


import numpy as np

from repro.graphs.csr import CSRGraph
from repro.workloads.base import StreamCursor, Workload

PC_OFFSETS = 0x800
PC_TARGETS = 0x804
PC_GATHER = 0x808
PC_LABEL_STORE = 0x80C


class LabelPropagationWorkload(Workload):
    """Synchronous label propagation over a symmetrized graph."""

    name = "label_propagation"

    def __init__(self, graph: CSRGraph, iterations: int = 3, window_size: int = 16):
        super().__init__(iterations, window_size)
        self.graph = graph.symmetrized()
        self.labels: np.ndarray = np.empty(0)
        self.changes_history: list = []

    # ------------------------------------------------------------------
    def _allocate(self) -> None:
        num_vertices = self.graph.num_vertices
        num_edges = max(1, self.graph.num_edges)
        self.space.alloc("offsets", num_vertices + 1, 8)
        self.space.alloc("targets", num_edges, 4)
        self.space.alloc("labels_a", num_vertices, 4)
        self.space.alloc("labels_b", num_vertices, 4)
        self._curr_name = "labels_a"
        self._next_name = "labels_b"
        self.labels = np.arange(num_vertices, dtype=np.int64)
        self.changes_history = []

    def _setup_rnr(self) -> None:
        num_vertices = self.graph.num_vertices
        self.rnr.addr_base.set(self.region("labels_a"), num_vertices)
        self.rnr.addr_base.set(self.region("labels_b"), num_vertices)
        self.rnr.addr_base.enable(self.region(self._curr_name))

    def emit_droplet_descriptors(self) -> None:
        """Emit droplet.edges/droplet.values directives."""
        targets = self.region("targets")
        self.builder.directive("droplet.edges", targets.base, targets.size)
        for name in ("labels_a", "labels_b"):
            region = self.region(name)
            self.builder.directive(
                "droplet.values", region.base, region.size, region.element_size
            )

    # ------------------------------------------------------------------
    def _run_iteration(self, iteration: int) -> None:
        builder = self.builder
        labels_curr = self.region(self._curr_name)
        labels_next = self.region(self._next_name)
        offsets_cursor = StreamCursor(builder, self.region("offsets"), PC_OFFSETS)
        targets_cursor = StreamCursor(builder, self.region("targets"), PC_TARGETS)
        store_cursor = StreamCursor(
            builder, labels_next, PC_LABEL_STORE, work_per_elem=3, is_store=True
        )
        offsets = self.graph.offsets
        targets = self.graph.targets
        for vertex in range(self.graph.num_vertices):
            offsets_cursor.touch(vertex)
            for edge in range(offsets[vertex], offsets[vertex + 1]):
                targets_cursor.touch(int(edge))
                builder.work(2)
                builder.load(labels_curr.addr(int(targets[edge])), PC_GATHER)
            builder.work(4)  # argmax over the neighbour-label histogram
            store_cursor.touch(vertex)

        self._advance_numerics()

    def _advance_numerics(self) -> None:
        """One synchronous sweep: adopt the plurality neighbour label
        (deterministic tie-break: smallest label id).

        Vectorised: (vertex, neighbour-label) pairs are sorted so equal
        pairs are adjacent, run-lengths counted, and per vertex the first
        maximal run (i.e. the smallest label among the most frequent)
        selected."""
        num_vertices = self.graph.num_vertices
        degrees = self.graph.degrees()
        if self.graph.num_edges == 0:
            self.changes_history.append(0)
            return
        dest = np.repeat(np.arange(num_vertices, dtype=np.int64), degrees)
        neighbour_labels = self.labels[self.graph.targets]
        keys = dest * (num_vertices + 1) + neighbour_labels
        keys.sort()
        # Run-length encode the sorted (vertex, label) keys.
        boundaries = np.concatenate(([True], keys[1:] != keys[:-1]))
        run_keys = keys[boundaries]
        run_counts = np.diff(np.concatenate((np.nonzero(boundaries)[0], [keys.size])))
        run_vertices = run_keys // (num_vertices + 1)
        run_labels = run_keys % (num_vertices + 1)
        # Per vertex: pick the run with the max count; ties resolve to the
        # smallest label because runs are label-sorted and argmax-by-scan
        # keeps the first maximum.
        new_labels = self.labels.copy()
        order = np.lexsort((run_labels, -run_counts, run_vertices))
        sorted_vertices = run_vertices[order]
        first = np.concatenate(([True], sorted_vertices[1:] != sorted_vertices[:-1]))
        new_labels[sorted_vertices[first]] = run_labels[order][first]
        self.changes_history.append(int(np.sum(new_labels != self.labels)))
        self.labels = new_labels

    def _after_iteration(self, iteration: int, rnr_enabled: bool) -> None:
        self._curr_name, self._next_name = self._next_name, self._curr_name
        if rnr_enabled and iteration < self.iterations - 1:
            self.rnr.addr_base.disable(self.region(self._next_name))
            self.rnr.addr_base.enable(self.region(self._curr_name))

    # ------------------------------------------------------------------
    @property
    def input_bytes(self) -> int:
        """Footprint of the input data in bytes."""
        return self.graph.input_bytes + self.graph.num_vertices * 4 * 2

    @property
    def num_communities(self) -> int:
        """Distinct labels after the simulated iterations."""
        return int(np.unique(self.labels).size)

    def edge_line_values(self, line_addr: int) -> list:
        """Vertex ids stored in one edge-array cache line (DROPLET)."""
        targets = self.region("targets")
        base_addr = line_addr * 64
        if not targets.contains(base_addr):
            return []
        first = (base_addr - targets.base) // 4
        last = min(self.graph.num_edges, first + 16)
        return [int(v) for v in self.graph.targets[first:last]]

    def read_int(self, address: int, elem_size: int):
        """Integer stored at a simulated address (IMP's value reader)."""
        targets = self.region("targets")
        if targets.contains(address) and elem_size == 4:
            index = (address - targets.base) // 4
            if index < self.graph.num_edges:
                return int(self.graph.targets[index])
        return None
