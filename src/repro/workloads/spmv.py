"""Standalone repeated SpMV (the paper's Fig 2 motivating example).

``y = A @ x`` repeated with the same matrix: the row pointer, column and
value arrays stream; the dense-vector gather ``x[col[j]]`` is the
irregular pattern.  Unlike spCG there are no vector-update phases — this
is the minimal kernel the paper opens with, useful for microbenchmarks
and for isolating the gather behaviour from CG's dense phases.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csr_matrix import CSRMatrix
from repro.workloads.base import StreamCursor, Workload

PC_INDPTR = 0x900
PC_INDICES = 0x904
PC_VALUES = 0x908
PC_GATHER = 0x90C
PC_Y_STORE = 0x910


class SpMVWorkload(Workload):
    """Repeated sparse matrix-vector multiplication."""

    name = "spmv"

    def __init__(
        self,
        matrix: CSRMatrix,
        iterations: int = 3,
        window_size: int = 16,
        x_seed: int = 11,
    ):
        super().__init__(iterations, window_size)
        self.matrix = matrix
        self.x_seed = x_seed
        self.y: np.ndarray = np.empty(0)

    # ------------------------------------------------------------------
    def _allocate(self) -> None:
        rows = self.matrix.num_rows
        cols = self.matrix.num_cols
        nnz = max(1, self.matrix.nnz)
        self.space.alloc("indptr", rows + 1, 8)
        self.space.alloc("indices", nnz, 4)
        self.space.alloc("values", nnz, 8)
        self.space.alloc("x", cols, 8)
        self.space.alloc("y", rows, 8)
        rng = np.random.default_rng(self.x_seed)
        self._x = rng.standard_normal(cols)
        self.y = np.zeros(rows)

    def _setup_rnr(self) -> None:
        self.rnr.addr_base.set(self.region("x"), self.matrix.num_cols)
        self.rnr.addr_base.enable(self.region("x"))

    # ------------------------------------------------------------------
    def _run_iteration(self, iteration: int) -> None:
        builder = self.builder
        matrix = self.matrix
        x_region = self.region("x")
        indptr_cursor = StreamCursor(builder, self.region("indptr"), PC_INDPTR)
        indices_cursor = StreamCursor(builder, self.region("indices"), PC_INDICES)
        values_cursor = StreamCursor(builder, self.region("values"), PC_VALUES)
        y_cursor = StreamCursor(
            builder, self.region("y"), PC_Y_STORE, work_per_elem=2, is_store=True
        )
        indptr = matrix.indptr
        indices = matrix.indices
        for row in range(matrix.num_rows):
            indptr_cursor.touch(row)
            for element in range(indptr[row], indptr[row + 1]):
                indices_cursor.touch(int(element))
                values_cursor.touch(int(element))
                builder.work(2)
                builder.load(x_region.addr(int(indices[element])), PC_GATHER)
            y_cursor.touch(row)
        self.y = matrix.spmv(self._x)

    # ------------------------------------------------------------------
    @property
    def input_bytes(self) -> int:
        """Footprint of the input data in bytes."""
        return self.matrix.input_bytes + self.matrix.num_cols * 8

    @property
    def x(self) -> np.ndarray:
        """The dense input vector."""
        return self._x

    def read_int(self, address: int, elem_size: int):
        """Integer stored at a simulated address (IMP's value reader)."""
        indices = self.region("indices")
        if indices.contains(address) and elem_size == 4:
            index = (address - indices.base) // 4
            if index < self.matrix.nnz:
                return int(self.matrix.indices[index])
        return None
