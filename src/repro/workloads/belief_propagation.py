"""Loopy belief propagation over a pairwise MRF on a graph (paper
Section II: one of the "iterative graph algorithms" with repeating
irregular access patterns [28]).

Binary-state sum-product BP in log-space: every iteration recomputes each
directed edge's message from the incoming messages of the source vertex.
Message reads ``msg_curr[rev_edge]`` follow the graph structure — the
repeating irregular gather — while the edge list itself streams.

Like PageRank, messages are double-buffered, so ``msg_curr``/``msg_next``
swap bases each iteration and the workload exercises RnR's base-swap
replay.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph
from repro.workloads.base import StreamCursor, Workload

PC_EDGES = 0x700
PC_GATHER = 0x704
PC_MSG_STORE = 0x708
PC_BELIEF_LOAD = 0x70C
PC_BELIEF_STORE = 0x710
PC_REVERSE = 0x714

MESSAGE_BYTES = 8  # one float64 log-odds per directed edge


class BeliefPropagationWorkload(Workload):
    """Sum-product BP with binary states, parametrised by edge coupling."""

    name = "belief_propagation"

    def __init__(
        self,
        graph: CSRGraph,
        iterations: int = 3,
        window_size: int = 16,
        coupling: float = 0.3,
        prior_seed: int = 5,
    ):
        super().__init__(iterations, window_size)
        self.graph = graph.symmetrized()
        self.coupling = coupling
        self.prior_seed = prior_seed
        # Directed-edge layout: edge e = (src(e) -> dst(e)) in CSR order.
        self._edge_src = np.repeat(
            np.arange(self.graph.num_vertices), self.graph.degrees()
        )
        self._edge_dst = self.graph.targets.astype(np.int64)
        self._reverse = self._build_reverse_index()
        self.beliefs: np.ndarray = np.empty(0)
        self.residual_history: list = []

    def _build_reverse_index(self) -> np.ndarray:
        """reverse[e] = index of the edge dst(e) -> src(e).

        The symmetrized graph guarantees every edge has its reverse."""
        num_vertices = self.graph.num_vertices
        keys = self._edge_src * num_vertices + self._edge_dst
        reverse_keys = self._edge_dst * num_vertices + self._edge_src
        order = np.argsort(keys)
        positions = np.searchsorted(keys[order], reverse_keys)
        reverse = order[positions]
        if not np.array_equal(keys[reverse], reverse_keys):
            raise ValueError("graph is not symmetric; BP needs reverse edges")
        return reverse

    # ------------------------------------------------------------------
    def _allocate(self) -> None:
        num_edges = max(1, self.graph.num_edges)
        num_vertices = self.graph.num_vertices
        self.space.alloc("edges", num_edges, 8)
        self.space.alloc("reverse", num_edges, 4)
        self.space.alloc("msg_a", num_edges, MESSAGE_BYTES)
        self.space.alloc("msg_b", num_edges, MESSAGE_BYTES)
        self.space.alloc("prior", num_vertices, 8)
        self.space.alloc("belief", num_vertices, 8)
        self._curr_name = "msg_a"
        self._next_name = "msg_b"
        rng = np.random.default_rng(self.prior_seed)
        self._prior = rng.uniform(-0.5, 0.5, size=num_vertices)
        self._messages = np.zeros(num_edges)
        self.beliefs = self._prior.copy()
        self.residual_history = []

    def _setup_rnr(self) -> None:
        num_edges = self.graph.num_edges
        self.rnr.addr_base.set(self.region("msg_a"), num_edges)
        self.rnr.addr_base.set(self.region("msg_b"), num_edges)
        self.rnr.addr_base.enable(self.region(self._curr_name))

    def emit_droplet_descriptors(self) -> None:
        """Emit droplet.edges/droplet.values directives."""
        edges = self.region("edges")
        self.builder.directive("droplet.edges", edges.base, edges.size)
        for name in ("msg_a", "msg_b"):
            region = self.region(name)
            self.builder.directive(
                "droplet.values", region.base, region.size, region.element_size
            )

    # ------------------------------------------------------------------
    def _run_iteration(self, iteration: int) -> None:
        builder = self.builder
        msg_curr = self.region(self._curr_name)
        msg_next = self.region(self._next_name)
        edges_cursor = StreamCursor(builder, self.region("edges"), PC_EDGES)
        reverse_cursor = StreamCursor(builder, self.region("reverse"), PC_REVERSE)
        store_cursor = StreamCursor(
            builder, msg_next, PC_MSG_STORE, work_per_elem=3, is_store=True
        )
        # Message update: msg_next[e] = f(prior[src] + sum(in msgs) -
        # msg_curr[rev(e)]).  The gather msg_curr[rev(e)] is irregular
        # because the reverse-edge index permutes the edge space.
        for edge in range(self.graph.num_edges):
            edges_cursor.touch(edge)
            reverse_cursor.touch(edge)
            builder.work(3)
            builder.load(msg_curr.addr(int(self._reverse[edge])), PC_GATHER)
            store_cursor.touch(edge)

        # Belief update: stream vertices, fold in incident messages.
        prior_cursor = StreamCursor(builder, self.region("prior"), PC_BELIEF_LOAD)
        belief_cursor = StreamCursor(
            builder, self.region("belief"), PC_BELIEF_STORE, work_per_elem=2,
            is_store=True,
        )
        for vertex in range(self.graph.num_vertices):
            prior_cursor.touch(vertex)
            belief_cursor.touch(vertex)

        self._advance_numerics()

    def _advance_numerics(self) -> None:
        """One synchronous log-space BP sweep (binary states)."""
        num_vertices = self.graph.num_vertices
        incoming = np.zeros(num_vertices)
        np.add.at(incoming, self._edge_dst, self._messages)
        # Outgoing message on edge e excludes the reverse message.
        pre = self._prior[self._edge_src] + (
            incoming[self._edge_src] - self._messages[self._reverse]
        )
        new_messages = np.tanh(pre / 2.0)
        new_messages = 2.0 * np.arctanh(
            np.clip(np.tanh(self.coupling) * new_messages, -0.999999, 0.999999)
        )
        residual = float(np.abs(new_messages - self._messages).max())
        self.residual_history.append(residual)
        self._messages = new_messages
        incoming = np.zeros(num_vertices)
        np.add.at(incoming, self._edge_dst, self._messages)
        self.beliefs = self._prior + incoming

    def _after_iteration(self, iteration: int, rnr_enabled: bool) -> None:
        self._curr_name, self._next_name = self._next_name, self._curr_name
        if rnr_enabled and iteration < self.iterations - 1:
            self.rnr.addr_base.disable(self.region(self._next_name))
            self.rnr.addr_base.enable(self.region(self._curr_name))

    # ------------------------------------------------------------------
    @property
    def input_bytes(self) -> int:
        """Footprint of the input data in bytes."""
        return self.graph.num_edges * (8 + 4 + 2 * MESSAGE_BYTES)

    def edge_line_values(self, line_addr: int) -> list:
        """Reverse-edge indices in one cache line (DROPLET's view)."""
        reverse = self.region("reverse")
        base_addr = line_addr * 64
        if not reverse.contains(base_addr):
            return []
        first = (base_addr - reverse.base) // 4
        last = min(self.graph.num_edges, first + 16)
        return [int(r) for r in self._reverse[first:last]]

    def read_int(self, address: int, elem_size: int):
        """Integer stored at a simulated address (IMP's value reader)."""
        reverse = self.region("reverse")
        if reverse.contains(address) and elem_size == 4:
            index = (address - reverse.base) // 4
            if index < self.graph.num_edges:
                return int(self._reverse[index])
        return None
