"""FCFS memory controller (paper Table II).

Behavioural model of ChampSim's controller as the paper configures it:

* a 64-entry read queue and a 32-entry write queue;
* FCFS service order with **demand reads prioritized over prefetch and
  metadata reads** (prefetches see queueing delay proportional to pending
  demand work);
* posted writes with watermark draining — writes buffer silently until the
  queue reaches the high watermark (75 %), then drain down to the low
  watermark (25 %), stealing DRAM bank/bus time from reads (this is how the
  record-iteration metadata write traffic costs ~1 % IPC, Section VII-A.6);
* bank and bus contention from :class:`repro.mem.dram.DramBankModel`.

External timestamps are in core cycles; DRAM internals run in memory-bus
cycles.
"""

from __future__ import annotations

import heapq
from enum import Enum

from repro.config import CoreConfig, MemoryConfig
from repro.mem.dram import DramBankModel


class RequestKind(Enum):
    """Who is asking for the line (drives priority and traffic accounting)."""

    DEMAND = "demand"
    PREFETCH = "prefetch"
    METADATA_READ = "metadata_read"
    METADATA_WRITE = "metadata_write"
    WRITEBACK = "writeback"


_READ_KINDS = (RequestKind.DEMAND, RequestKind.PREFETCH, RequestKind.METADATA_READ)


class MemoryController:
    """Single-channel FCFS controller over a :class:`DramBankModel`."""

    def __init__(self, config: MemoryConfig, core: CoreConfig):
        self._config = config
        self._dram = DramBankModel(config)
        self._ratio = (core.freq_ghz * 1000.0) / config.timing.freq_mhz
        # Outstanding read completions (memory cycles), a bounded queue.
        self._outstanding_reads: list[float] = []
        self._outstanding_demand: list[float] = []
        # Pending (not yet drained) write addresses.
        self._write_queue: list[int] = []
        self._read_queue = config.read_queue
        self._drain_high = max(1, int(config.write_queue * config.drain_high))
        self._drain_low = max(0, int(config.write_queue * config.drain_low))
        self.reads_serviced = 0
        self.writes_serviced = 0

    @property
    def dram(self) -> DramBankModel:
        """The underlying DRAM model."""
        return self._dram

    def reset(self) -> None:
        """Clear all state."""
        self._dram.reset()
        self._outstanding_reads.clear()
        self._outstanding_demand.clear()
        self._write_queue.clear()
        self.reads_serviced = 0
        self.writes_serviced = 0

    # ------------------------------------------------------------------
    # Clock conversion
    # ------------------------------------------------------------------
    def _to_mem(self, core_cycle: int) -> float:
        return core_cycle / self._ratio

    def _to_core(self, mem_cycle: float) -> int:
        return int(mem_cycle * self._ratio) + 1

    # ------------------------------------------------------------------
    # Queue-occupancy modelling
    # ------------------------------------------------------------------
    def _retire_completed(self, now_mem: float) -> None:
        for heap in (self._outstanding_reads, self._outstanding_demand):
            while heap and heap[0] <= now_mem:
                heapq.heappop(heap)

    def _read_queue_delay(self, now_mem: float) -> float:
        """If the read queue is full, wait for the oldest entry to retire."""
        if len(self._outstanding_reads) < self._config.read_queue:
            return now_mem
        return max(now_mem, self._outstanding_reads[0])

    def _prefetch_penalty(self) -> float:
        """Demand-priority: prefetch waits behind pending demand transfers."""
        return len(self._outstanding_demand) * self._config.timing.tBURST

    # ------------------------------------------------------------------
    # Public interface
    # ------------------------------------------------------------------
    def read(self, address: int, core_cycle: int, kind: RequestKind = RequestKind.DEMAND) -> int:
        """Service a line read; returns the completion time in core cycles."""
        if kind not in _READ_KINDS:
            raise ValueError(f"read() called with non-read kind {kind}")
        # Hot path (one call per LLC miss): _to_mem/_retire_completed/
        # _read_queue_delay inlined, with the same arithmetic.
        ratio = self._ratio
        now = core_cycle / ratio
        reads = self._outstanding_reads
        demand = self._outstanding_demand
        while reads and reads[0] <= now:
            heapq.heappop(reads)
        while demand and demand[0] <= now:
            heapq.heappop(demand)
        if len(reads) < self._read_queue:
            arrival = now
        else:
            arrival = max(now, reads[0])
        if kind is RequestKind.PREFETCH:
            arrival += len(demand) * self._config.timing.tBURST
        completion = self._dram.service(address, int(arrival), is_write=False)
        heapq.heappush(reads, float(completion))
        if kind is RequestKind.DEMAND:
            heapq.heappush(demand, float(completion))
        self.reads_serviced += 1
        return int(completion * ratio) + 1

    def read_demand(self, address: int, core_cycle: int) -> int:
        """Demand-read fast path: :meth:`read` with the kind checks and
        prefetch-priority branches resolved at the call site (identical
        timing for ``kind=DEMAND``).  One call per LLC demand miss."""
        ratio = self._ratio
        now = core_cycle / ratio
        reads = self._outstanding_reads
        demand = self._outstanding_demand
        while reads and reads[0] <= now:
            heapq.heappop(reads)
        while demand and demand[0] <= now:
            heapq.heappop(demand)
        if len(reads) < self._read_queue:
            arrival = now
        else:
            arrival = max(now, reads[0])
        completion = self._dram.service(address, int(arrival), is_write=False)
        completion_f = float(completion)
        heapq.heappush(reads, completion_f)
        heapq.heappush(demand, completion_f)
        self.reads_serviced += 1
        return int(completion * ratio) + 1

    def write(self, address: int, core_cycle: int, kind: RequestKind = RequestKind.WRITEBACK) -> None:
        """Post a line write; drains synchronously past the high watermark."""
        if kind not in (RequestKind.WRITEBACK, RequestKind.METADATA_WRITE):
            raise ValueError(f"write() called with non-write kind {kind}")
        self._write_queue.append(address)
        if len(self._write_queue) >= self._drain_high:
            self._drain(core_cycle)

    def _drain(self, core_cycle: int) -> None:
        """Drain the write queue down to the low watermark.

        Writes are handed to the banks at the drain instant (they overlap
        across banks and only serialize on the data bus), modelling the
        paper's observation that non-temporal metadata stores stay off the
        demand critical path (Section VII-A.6)."""
        now = int(self._to_mem(core_cycle))
        while len(self._write_queue) > self._drain_low:
            address = self._write_queue.pop(0)
            self._dram.service(address, now, is_write=True)
            self.writes_serviced += 1

    def flush_writes(self, core_cycle: int) -> None:
        """Force out all pending writes (end of simulation)."""
        now = int(self._to_mem(core_cycle))
        while self._write_queue:
            address = self._write_queue.pop(0)
            self._dram.service(address, now, is_write=True)
            self.writes_serviced += 1

    @property
    def write_queue_occupancy(self) -> int:
        """Writes buffered and not yet drained."""
        return len(self._write_queue)
