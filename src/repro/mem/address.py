"""Physical-address to DRAM-coordinate mapping.

A simple row-interleaved mapping: consecutive cache lines walk through the
columns of one row; rows are striped across banks so that streams hit
multiple banks.  This matches ChampSim's default closely enough for the
contention behaviour the paper relies on (streamed metadata enjoying row
buffer hits; random vertex accesses thrashing rows, Section VII-A.7).
"""

from __future__ import annotations

from typing import NamedTuple

from repro.config import LINE_SIZE, MemoryConfig


class DramLocation(NamedTuple):
    """DRAM coordinates of one cache-line-sized access.

    A NamedTuple rather than a frozen dataclass: one is built per DRAM
    request, and tuple construction is several times cheaper than a frozen
    dataclass's ``object.__setattr__`` init.
    """

    channel: int
    rank: int
    bank: int
    row: int
    column: int


class AddressMapping:
    """Maps physical line addresses to (channel, rank, bank, row, column)."""

    def __init__(self, config: MemoryConfig):
        self._config = config
        self._lines_per_row = config.timing.row_bytes // LINE_SIZE
        self._banks = config.banks
        self._ranks = config.ranks
        self._channels = config.channels

    @property
    def lines_per_row(self) -> int:
        """Cache lines per DRAM row."""
        return self._lines_per_row

    def locate(self, address: int) -> DramLocation:
        """Map a byte address to its DRAM location."""
        line = address // LINE_SIZE
        column = line % self._lines_per_row
        frame = line // self._lines_per_row
        bank = frame % self._banks
        frame //= self._banks
        rank = frame % self._ranks
        frame //= self._ranks
        channel = frame % self._channels
        row = frame // self._channels
        return DramLocation(channel, rank, bank, row, column)

    def same_row(self, addr_a: int, addr_b: int) -> bool:
        """Whether two addresses share a DRAM row."""
        loc_a = self.locate(addr_a)
        loc_b = self.locate(addr_b)
        return (
            loc_a.channel == loc_b.channel
            and loc_a.rank == loc_b.rank
            and loc_a.bank == loc_b.bank
            and loc_a.row == loc_b.row
        )
