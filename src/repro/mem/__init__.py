"""Main-memory substrate: DRAM address mapping, bank/bus timing, and the
FCFS memory controller with demand-over-prefetch priority and write-queue
draining (paper Table II)."""

from repro.mem.address import AddressMapping, DramLocation
from repro.mem.dram import DramBankModel
from repro.mem.controller import MemoryController, RequestKind

__all__ = [
    "AddressMapping",
    "DramLocation",
    "DramBankModel",
    "MemoryController",
    "RequestKind",
]
