"""DRAM bank and data-bus timing model.

Models, per the paper's ChampSim methodology:

* open-row policy per bank — a row-buffer hit costs ``tCL``; a conflict
  costs ``tRP + tRCD + tCL`` (precharge, activate, then CAS);
* data-bus occupancy of ``tBURST`` per transfer with read/write turnaround
  penalties (``tRTW`` / ``tWTR``);
* per-bank busy windows so concurrent requests to different banks overlap
  while same-bank requests serialize (bank contention).

All internal times are in memory-bus cycles; the controller converts to
core cycles at the boundary.
"""

from __future__ import annotations

from repro.config import LINE_SIZE, MemoryConfig
from repro.mem.address import AddressMapping, DramLocation


class _BankState:
    __slots__ = ("open_row", "ready_at")

    def __init__(self) -> None:
        self.open_row = -1
        self.ready_at = 0


class DramBankModel:
    """Timing for the DRAM channels (banks + one data bus per channel).

    Table II configures a single channel; multi-channel configurations
    give each channel its own data bus and bank set, which the bandwidth
    ablation uses to test how much of the reproduction's speedup
    compression is bus-bandwidth-bound (see EXPERIMENTS.md).
    """

    def __init__(self, config: MemoryConfig):
        self._timing = config.timing
        self._mapping = AddressMapping(config)
        self._banks_per_channel = config.banks * config.ranks
        self._banks = [
            _BankState()
            for _ in range(self._banks_per_channel * config.channels)
        ]
        self._bus_free_at = [0] * config.channels
        self._last_was_write = [False] * config.channels
        self.row_hits = 0
        self.row_conflicts = 0
        # service() scalars, precomputed (one service call per DRAM
        # transfer; each config attribute chase adds up).
        timing = self._timing
        self._tCL = timing.tCL
        self._tRCD_tCL = timing.tRCD + timing.tCL
        self._tRP_tRCD_tCL = timing.tRP + timing.tRCD + timing.tCL
        self._tBURST = timing.tBURST
        self._tWTR = timing.tWTR
        self._tRTW = timing.tRTW
        mapping = self._mapping
        self._row_bytes = LINE_SIZE * mapping.lines_per_row
        self._map_banks = mapping._banks
        self._map_ranks = mapping._ranks
        self._map_channels = mapping._channels
        self._num_banks = len(self._banks)

    @property
    def mapping(self) -> AddressMapping:
        """The address-mapping helper."""
        return self._mapping

    def reset(self) -> None:
        """Clear all state."""
        for bank in self._banks:
            bank.open_row = -1
            bank.ready_at = 0
        self._bus_free_at = [0] * len(self._bus_free_at)
        self._last_was_write = [False] * len(self._last_was_write)
        self.row_hits = 0
        self.row_conflicts = 0

    def _bank_index(self, loc: DramLocation) -> int:
        return (
            loc.channel * self._banks_per_channel
            + loc.rank * 0
            + loc.bank
        ) % len(self._banks)

    def service(self, address: int, arrival: int, is_write: bool) -> int:
        """Service one line transfer; returns the completion time.

        ``arrival`` and the result are in memory-bus cycles.
        """
        # Hot path (one call per DRAM transfer): address decode and bank
        # index inlined — same arithmetic as AddressMapping.locate — and
        # every timing/mapping scalar read from the precomputed attrs.
        frame = address // self._row_bytes
        bank_no = frame % self._map_banks
        frame //= self._map_banks
        frame //= self._map_ranks
        channels = self._map_channels
        channel = frame % channels
        row = frame // channels
        bank = self._banks[
            (channel * self._banks_per_channel + bank_no) % self._num_banks
        ]

        ready = bank.ready_at
        start = arrival if arrival > ready else ready
        if bank.open_row == row:
            access_latency = self._tCL
            self.row_hits += 1
        else:
            access_latency = (
                self._tRCD_tCL if bank.open_row < 0 else self._tRP_tRCD_tCL
            )
            self.row_conflicts += 1
            bank.open_row = row

        bus_free_at = self._bus_free_at
        bus_free = bus_free_at[channel]
        data_ready = start + access_latency
        bus_start = data_ready if data_ready > bus_free else bus_free
        last_was_write = self._last_was_write
        if last_was_write[channel] != is_write and bus_free > 0:
            bus_start += self._tWTR if last_was_write[channel] else self._tRTW
        completion = bus_start + self._tBURST

        # The bank is free to activate again once its CAS completes; the
        # queued data waits in the bank's output path for its bus slot.
        bank.ready_at = data_ready
        bus_free_at[channel] = completion
        last_was_write[channel] = is_write
        return completion
