"""DRAM bank and data-bus timing model.

Models, per the paper's ChampSim methodology:

* open-row policy per bank — a row-buffer hit costs ``tCL``; a conflict
  costs ``tRP + tRCD + tCL`` (precharge, activate, then CAS);
* data-bus occupancy of ``tBURST`` per transfer with read/write turnaround
  penalties (``tRTW`` / ``tWTR``);
* per-bank busy windows so concurrent requests to different banks overlap
  while same-bank requests serialize (bank contention).

All internal times are in memory-bus cycles; the controller converts to
core cycles at the boundary.
"""

from __future__ import annotations

from repro.config import LINE_SIZE, MemoryConfig
from repro.mem.address import AddressMapping, DramLocation


class _BankState:
    __slots__ = ("open_row", "ready_at")

    def __init__(self) -> None:
        self.open_row = -1
        self.ready_at = 0


class DramBankModel:
    """Timing for the DRAM channels (banks + one data bus per channel).

    Table II configures a single channel; multi-channel configurations
    give each channel its own data bus and bank set, which the bandwidth
    ablation uses to test how much of the reproduction's speedup
    compression is bus-bandwidth-bound (see EXPERIMENTS.md).
    """

    def __init__(self, config: MemoryConfig):
        self._timing = config.timing
        self._mapping = AddressMapping(config)
        self._banks_per_channel = config.banks * config.ranks
        self._banks = [
            _BankState()
            for _ in range(self._banks_per_channel * config.channels)
        ]
        self._bus_free_at = [0] * config.channels
        self._last_was_write = [False] * config.channels
        self.row_hits = 0
        self.row_conflicts = 0

    @property
    def mapping(self) -> AddressMapping:
        """The address-mapping helper."""
        return self._mapping

    def reset(self) -> None:
        """Clear all state."""
        for bank in self._banks:
            bank.open_row = -1
            bank.ready_at = 0
        self._bus_free_at = [0] * len(self._bus_free_at)
        self._last_was_write = [False] * len(self._last_was_write)
        self.row_hits = 0
        self.row_conflicts = 0

    def _bank_index(self, loc: DramLocation) -> int:
        return (
            loc.channel * self._banks_per_channel
            + loc.rank * 0
            + loc.bank
        ) % len(self._banks)

    def service(self, address: int, arrival: int, is_write: bool) -> int:
        """Service one line transfer; returns the completion time.

        ``arrival`` and the result are in memory-bus cycles.
        """
        # Hot path (one call per DRAM transfer): address decode and bank
        # index inlined — same arithmetic as AddressMapping.locate.
        timing = self._timing
        mapping = self._mapping
        frame = address // (LINE_SIZE * mapping.lines_per_row)
        bank_no = frame % mapping._banks
        frame //= mapping._banks
        frame //= mapping._ranks
        channel = frame % mapping._channels
        row = frame // mapping._channels
        banks = self._banks
        bank = banks[(channel * self._banks_per_channel + bank_no) % len(banks)]

        start = max(arrival, bank.ready_at)
        if bank.open_row == row:
            access_latency = timing.tCL
            self.row_hits += 1
        else:
            if bank.open_row < 0:
                access_latency = timing.tRCD + timing.tCL
            else:
                access_latency = timing.tRP + timing.tRCD + timing.tCL
            self.row_conflicts += 1
            bank.open_row = row

        bus_free = self._bus_free_at[channel]
        data_ready = start + access_latency
        bus_start = data_ready if data_ready > bus_free else bus_free
        if self._last_was_write[channel] != is_write and bus_free > 0:
            bus_start += timing.tWTR if self._last_was_write[channel] else timing.tRTW
        completion = bus_start + timing.tBURST

        # The bank is free to activate again once its CAS completes; the
        # queued data waits in the bank's output path for its bus slot.
        bank.ready_at = data_ready
        self._bus_free_at[channel] = completion
        self._last_was_write[channel] = is_write
        return completion
