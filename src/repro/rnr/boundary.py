"""Boundary-checking address registers (spatial regions of interest).

Each register holds a virtual base address, a size, and an enable bit
(Section IV-A state (2)).  Every demand read checks these bounds before
address translation; a hit increments ``Cur Struct Read`` and flags the
memory packet so (a) its L2 miss is recorded/replayed and (b) the stream
prefetcher skips it (Fig 4 steps 1-4).

The sequence table stores *block offsets* relative to the matched base, so
a replay survives the programmer swapping base pointers between iterations
(Algorithm 1 lines 31-33: p_curr / p_next exchange).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.config import LINE_SIZE


@dataclass
class BoundaryEntry:
    """One boundary register: base + size + enable."""

    base: int
    size: int
    enabled: bool = False

    def contains(self, address: int) -> bool:
        """Whether the address/element falls inside."""
        return self.enabled and self.base <= address < self.base + self.size


class BoundaryTable:
    """A small, per-core file of boundary registers.

    The paper's evaluation uses two registers (footnote 1); the count is a
    hardware parameter, so exceeding it raises.
    """

    def __init__(self, max_entries: int = 2):
        if max_entries < 1:
            raise ValueError(f"need at least one boundary register, got {max_entries}")
        self.max_entries = max_entries
        self._entries: List[BoundaryEntry] = []

    # -- software-visible operations (Table I AddrBase.*) --------------------
    def set(self, base: int, size: int) -> int:
        """Install a base/size pair; returns the register slot."""
        if size <= 0:
            raise ValueError(f"boundary size must be positive, got {size}")
        for slot, entry in enumerate(self._entries):
            if entry.base == base:
                entry.size = size
                return slot
        if len(self._entries) >= self.max_entries:
            raise RuntimeError(
                f"all {self.max_entries} boundary registers are in use"
            )
        self._entries.append(BoundaryEntry(base, size))
        return len(self._entries) - 1

    def _slot_of(self, base: int) -> int:
        for slot, entry in enumerate(self._entries):
            if entry.base == base:
                return slot
        raise KeyError(f"no boundary register holds base {base:#x}")

    def enable(self, base: int) -> None:
        self._entries[self._slot_of(base)].enabled = True

    def disable(self, base: int) -> None:
        self._entries[self._slot_of(base)].enabled = False

    def clear(self) -> None:
        """Drop everything."""
        self._entries.clear()

    # -- hardware-side check ----------------------------------------------
    def check(self, address: int) -> Optional[Tuple[int, int]]:
        """Bounds-check one demand access.

        Returns ``(slot, line_offset)`` when the address falls inside an
        enabled region — ``line_offset`` is the cache-line offset from the
        region base (what the sequence table records) — else None.
        """
        for slot, entry in enumerate(self._entries):
            if entry.enabled and entry.base <= address < entry.base + entry.size:
                return slot, (address - entry.base) // LINE_SIZE
        return None

    def line_addr(self, slot: int, line_offset: int) -> Optional[int]:
        """Translate a recorded (slot, offset) back to a cache-line address
        using the *currently configured* bases.

        If the recorded slot is disabled (the programmer swapped bases
        between iterations), the offset is applied to the enabled register
        instead — the paper's base-swap convention.
        """
        entry = self._entries[slot]
        if not entry.enabled:
            enabled = [e for e in self._entries if e.enabled]
            if len(enabled) != 1:
                return None
            entry = enabled[0]
        address = entry.base + line_offset * LINE_SIZE
        if address >= entry.base + entry.size:
            return None
        return address // LINE_SIZE

    # -- introspection ------------------------------------------------------
    @property
    def entries(self) -> List[BoundaryEntry]:
        """Current register-file contents."""
        return list(self._entries)

    @property
    def enabled_entries(self) -> List[BoundaryEntry]:
        """Registers with the enable bit set."""
        return [entry for entry in self._entries if entry.enabled]

    def snapshot(self) -> list:
        """Copy out the state (context switch)."""
        return [(e.base, e.size, e.enabled) for e in self._entries]

    def restore(self, snapshot: list) -> None:
        """Copy state back in (context switch)."""
        self._entries = [BoundaryEntry(b, s, en) for b, s, en in snapshot]
