"""The RnR prefetcher as seen by the simulator (Fig 4 integration).

Pulls the pieces together:

* boundary check + ``Cur Struct Read`` on every demand read;
* packet flagging so the L2 event handler knows a miss belongs to the
  target structure (and so a composite stream prefetcher skips it);
* Record state -> :class:`~repro.rnr.recorder.Recorder`;
* Replay state -> :class:`~repro.rnr.replayer.Replayer` with the chosen
  timing-control mode;
* the Fig 11 timeliness breakdown (on-time / early / late / out-of-window)
  via the hierarchy's unused-prefetch classifier;
* context-switch save/restore (Section IV-C).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.prefetchers.base import Prefetcher
from repro.cache.hierarchy import L2Event
from repro.rnr.boundary import BoundaryTable
from repro.rnr.recorder import Recorder
from repro.rnr.registers import RnRRegisters
from repro.rnr.replayer import ControlMode, Replayer
from repro.rnr.state import PrefetchStateMachine
from repro.rnr.tables import DivisionTable, SequenceTable


class RnRPrefetcher(Prefetcher):
    name = "rnr"

    def __init__(
        self,
        mode: ControlMode = ControlMode.WINDOW_PACE,
        boundary_registers: int = 2,
        seq_entry_bytes: int = 4,
        div_entry_bytes: int = 8,
    ):
        super().__init__()
        self.mode = mode if isinstance(mode, ControlMode) else ControlMode(mode)
        self.machine = PrefetchStateMachine()
        self.registers = RnRRegisters()
        self.boundary = BoundaryTable(max_entries=boundary_registers)
        self.seq_entry_bytes = seq_entry_bytes
        self.div_entry_bytes = div_entry_bytes
        self.sequence: Optional[SequenceTable] = None
        self.division: Optional[DivisionTable] = None
        self.recorder: Optional[Recorder] = None
        self.replayer: Optional[Replayer] = None
        self._last_check: Optional[Tuple[int, int]] = None
        self._evicted_unused: Dict[int, int] = {}
        self._finalized = False

    # ------------------------------------------------------------------
    def attach(self, hierarchy, stats):
        """Bind to a core's hierarchy before simulation."""
        super().attach(hierarchy, stats)
        hierarchy.unused_prefetch_classifier = self._classify_unused

    def attach_telemetry(self, collector):
        """Propagate the collector to the live recorder/replayer (and to
        any created by a later ``rnr.init`` directive)."""
        super().attach_telemetry(collector)
        if self.recorder is not None:
            self.recorder.telemetry = collector
        if self.replayer is not None:
            self.replayer.telemetry = collector

    # ------------------------------------------------------------------
    # Software directives (Table I calls arriving through the trace)
    # ------------------------------------------------------------------
    def on_directive(self, op, args, cycle):
        """Software-directive hook (Table I calls)."""
        if not op.startswith("rnr."):
            return
        if op == "rnr.init":
            self._handle_init(args)
        elif op == "rnr.addr_base.set":
            self.boundary.set(args[0], args[1])
        elif op == "rnr.addr_base.enable":
            self.boundary.enable(args[0])
        elif op == "rnr.addr_base.disable":
            self.boundary.disable(args[0])
        elif op == "rnr.window_size.set":
            self.registers.window_size = args[0]
        elif op == "rnr.state.start":
            self.machine.start()
        elif op == "rnr.state.replay":
            was_recording = self.machine.recording
            self.machine.replay()
            if was_recording:
                self._recorder_required().finish(cycle, self.hierarchy)
            self._replayer_required().begin(cycle)
        elif op == "rnr.state.pause":
            self.machine.pause()
            self.stats.rnr.pauses += 1
        elif op == "rnr.state.resume":
            self.machine.resume()
            self.stats.rnr.resumes += 1
        elif op == "rnr.state.end":
            if self.machine.recording:
                self._recorder_required().finish(cycle, self.hierarchy)
            self.machine.end()
        elif op == "rnr.end":
            self.sequence = None
            self.division = None
            self.recorder = None
            self.replayer = None
            self.boundary.clear()
        else:
            raise ValueError(f"unknown RnR directive {op!r}")

    def _handle_init(self, args) -> None:
        seq_base, seq_cap, div_base, div_cap, window, asid = args
        self.registers.asid = asid
        self.registers.window_size = window
        self.registers.seq_table_base = seq_base
        self.registers.div_table_base = div_base
        self.registers.seq_table_len = 0
        self.registers.div_table_len = 0
        self.sequence = SequenceTable(seq_base, seq_cap, self.seq_entry_bytes)
        self.division = DivisionTable(div_base, div_cap, self.div_entry_bytes)
        self.recorder = Recorder(
            self.registers, self.sequence, self.division, self.stats.rnr
        )
        self.replayer = Replayer(
            self.registers,
            self.boundary,
            self.sequence,
            self.division,
            self.stats.rnr,
            mode=self.mode,
            issue=self._issue_replay,
        )
        self.replayer.hierarchy = self.hierarchy
        if self.telemetry is not None:
            self.recorder.telemetry = self.telemetry
            self.replayer.telemetry = self.telemetry

    def _recorder_required(self) -> Recorder:
        if self.recorder is None:
            raise RuntimeError("RnR state call before RnR.init()")
        return self.recorder

    def _replayer_required(self) -> Replayer:
        if self.replayer is None:
            raise RuntimeError("RnR replay before RnR.init()")
        return self.replayer

    # ------------------------------------------------------------------
    # Demand-side hooks
    # ------------------------------------------------------------------
    def on_access(self, address, pc, cycle, is_store):
        """Demand-reference hook; returns the RnR packet flag."""
        self._last_check = None
        if is_store:
            return False
        machine = self.machine
        if not (machine.recording or machine.replaying):
            return False
        hit = self.boundary.check(address)
        if hit is None:
            return False
        self._last_check = hit
        self.registers.cur_struct_read += 1
        self.stats.rnr.struct_reads += 1
        if machine.replaying:
            self._replayer_required().on_struct_read(cycle)
        return True

    def access_hook_filter(self):
        """Vector-backend hook spill: only boundary-range loads while the
        state machine records or replays ever do anything in ``on_access``.

        Every input to the predicate — the machine state, the boundary
        registers and their enable bits — changes exclusively through
        ``on_directive``, so the mask is stable across a probe batch.
        Entries outside it fall through ``on_access`` with no effect
        beyond ``_last_check = None``, which is unobservable: the field
        is only read under ``flagged=True`` in ``on_l2_event``, and a
        flagged miss always runs its own ``on_access`` first.
        """

        def boundary_loads(is_load, addrs, pcs):
            machine = self.machine
            if not (machine.recording or machine.replaying):
                return None
            mask = None
            for entry in self.boundary.enabled_entries:
                in_range = (addrs >= entry.base) & (addrs < entry.base + entry.size)
                mask = in_range if mask is None else mask | in_range
            if mask is None:
                return None
            mask &= is_load
            return mask

        return boundary_loads

    def on_l2_event(self, line_addr, pc, cycle, event, flagged, completion=0):
        """L2 outcome hook (training input)."""
        if not flagged:
            return
        if event == L2Event.MISS:
            if self.machine.recording and self._last_check is not None:
                slot, offset = self._last_check
                self._recorder_required().record_miss(
                    slot, offset, cycle, self.hierarchy
                )
            elif self.machine.replaying:
                self._account_missed_window(line_addr)

    # ------------------------------------------------------------------
    # Timeliness classification (Fig 11)
    # ------------------------------------------------------------------
    def _issue_replay(self, line_addr: int, cycle: int, window: int) -> bool:
        tracer = self.hierarchy.tracer
        if tracer is not None:
            tracer.source = self.name
        return self.hierarchy.prefetch_l2(line_addr, cycle, pf_window=window)

    def _classify_unused(self, line_addr: int, pf_window: int) -> None:
        """Called by the hierarchy when a prefetched line is evicted (or
        still resident at drain) without a demand hit."""
        if self._finalized:
            self.stats.prefetch.out_of_window += 1
            return
        if line_addr in self._evicted_unused:
            # The line was re-prefetched before its earlier unused copy was
            # ever demanded: that earlier prefetch missed its window.
            self.stats.prefetch.out_of_window += 1
        self._evicted_unused[line_addr] = pf_window

    def _account_missed_window(self, line_addr: int) -> None:
        """A flagged demand miss during replay: if we prefetched this line
        for the current window but it was evicted first, that prefetch was
        *early*; if it was evicted and is only demanded in some other
        window (or never), it was *out of window*."""
        pf_window = self._evicted_unused.pop(line_addr, None)
        if pf_window is None:
            return
        if pf_window == self.registers.cur_window:
            self.stats.prefetch.early += 1
        else:
            self.stats.prefetch.out_of_window += 1

    def finalize(self, cycle):
        """End-of-trace hook."""
        if self.machine.recording:
            self._recorder_required().finish(cycle, self.hierarchy)
        self._finalized = True
        self.stats.prefetch.out_of_window += len(self._evicted_unused)
        self._evicted_unused.clear()

    # ------------------------------------------------------------------
    # Context switch (Section IV-C)
    # ------------------------------------------------------------------
    def save_context(self) -> dict:
        """Pause + copy out the 86.5 B of RnR state."""
        return {
            "registers": self.registers.snapshot(),
            "boundary": self.boundary.snapshot(),
            "state": self.machine.state,
        }

    def restore_context(self, saved: dict) -> None:
        self.registers.restore(saved["registers"])
        self.boundary.restore(saved["boundary"])
        self.machine.state = saved["state"]

    # ------------------------------------------------------------------
    @property
    def metadata_bytes(self) -> int:
        """Current metadata footprint (Fig 13 storage overhead)."""
        total = 0
        if self.sequence is not None:
            total += self.sequence.size_bytes
        if self.division is not None:
            total += self.division.size_bytes
        return total
