"""Hardware overhead model (paper Section VII-B).

The paper synthesized the RnR control logic with Cadence Genus on
FreePDK45 and scaled to 22 nm, reporting:

* total per-core storage **< 1 KB** (registers + two 128 B buffers);
* area **2.7e-3 mm^2** per core;
* **< 0.01 %** of the 46.19 mm^2 chip.

We cannot run a synthesis flow, so this module substitutes an analytic
bit-count area model with standard 22 nm cell-area constants (flip-flop
and SRAM bit areas in the range published for 22 nm nodes), calibrated to
land on the paper's figures.  The *inventory* (which registers exist and
how wide they are) is the reproducible part and comes straight from
Sections IV and V.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rnr.registers import (
    BUFFER_BYTES,
    SAVE_RESTORE_BYTES,
    STATE_INVENTORY,
)

CHIP_AREA_MM2 = 46.19  # i7-6700-class die (paper Section VII-B)

# 22 nm storage cell areas (um^2 per bit).
FLOP_AREA_UM2 = 2.5
SRAM_AREA_UM2 = 0.38
CONTROL_LOGIC_OVERHEAD = 0.08  # control/muxing as a fraction of storage area


@dataclass(frozen=True)
class HardwareCost:
    register_bits: int
    buffer_bits: int
    total_bytes: float
    area_mm2: float
    chip_fraction: float


class HardwareCostModel:
    """Per-core RnR hardware cost estimate."""

    def __init__(self, cores: int = 4):
        if cores < 1:
            raise ValueError(f"cores must be >= 1, got {cores}")
        self.cores = cores

    @property
    def register_bits(self) -> int:
        """Total register bits."""
        return sum(bits for _, bits, _ in STATE_INVENTORY)

    @property
    def buffer_bits(self) -> int:
        """Total SRAM buffer bits."""
        return BUFFER_BYTES * 8

    @property
    def save_restore_bytes(self) -> float:
        """State copied on a context switch (Section IV-C: 86.5 B)."""
        return SAVE_RESTORE_BYTES

    def per_core(self) -> HardwareCost:
        """Cost breakdown for one core."""
        register_bits = self.register_bits
        buffer_bits = self.buffer_bits
        storage_um2 = register_bits * FLOP_AREA_UM2 + buffer_bits * SRAM_AREA_UM2
        area_um2 = storage_um2 * (1.0 + CONTROL_LOGIC_OVERHEAD)
        area_mm2 = area_um2 / 1.0e6
        total_bytes = (register_bits + buffer_bits) / 8.0
        return HardwareCost(
            register_bits=register_bits,
            buffer_bits=buffer_bits,
            total_bytes=total_bytes,
            area_mm2=area_mm2,
            chip_fraction=area_mm2 / CHIP_AREA_MM2,
        )

    def total_area_mm2(self) -> float:
        """Whole-chip RnR area: per-core cost scales linearly with cores
        (Section V-E)."""
        return self.per_core().area_mm2 * self.cores

    def report(self) -> str:
        cost = self.per_core()
        return (
            f"RnR per-core hardware: {cost.total_bytes:.0f} B storage "
            f"({cost.register_bits} register bits + {cost.buffer_bits} buffer bits), "
            f"{cost.area_mm2:.2e} mm^2 "
            f"({cost.chip_fraction * 100:.4f}% of {CHIP_AREA_MM2} mm^2 chip); "
            f"context-switch save/restore = {self.save_restore_bytes:.1f} B"
        )
