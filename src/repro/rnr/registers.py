"""RnR register file: architectural states (Section IV-A) and internal
states (Section V), with the context-switch save/restore inventory.

The paper reports that pausing RnR around a context switch or migration
saves/restores **86.5 B** of state (Section IV-C).  The inventory below is
bit-accurate and sums to exactly 692 bits = 86.5 B; a regression test pins
it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

#: (register name, bits, architectural?) — the save/restore set.
STATE_INVENTORY: List[Tuple[str, int, bool]] = [
    # Architectural states (software-visible, Section IV-A)
    ("asid", 16, True),
    ("boundary_base_0", 48, True),
    ("boundary_size_0", 32, True),
    ("boundary_enable_0", 1, True),
    ("boundary_base_1", 48, True),
    ("boundary_size_1", 32, True),
    ("boundary_enable_1", 1, True),
    ("seq_table_base", 48, True),
    ("div_table_base", 48, True),
    ("window_size", 16, True),
    ("prefetch_state", 2, True),
    # Internal states (Section V)
    ("cur_struct_read", 32, False),
    ("seq_table_len", 32, False),
    ("div_table_len", 32, False),
    ("cur_seq_page_addr", 36, False),
    ("cur_div_page_addr", 36, False),
    ("cur_seq_read_ptr", 32, False),
    ("cur_div_read_ptr", 32, False),
    ("cur_window", 24, False),
    ("prefetch_pace", 16, False),
    ("prefetch_count", 32, False),
    ("pace_residue", 16, False),
    ("replay_seq_ptr", 32, False),
    ("window_struct_base", 32, False),
    ("buffer_fill_levels", 16, False),
]

SAVE_RESTORE_BITS = sum(bits for _, bits, _ in STATE_INVENTORY)
SAVE_RESTORE_BYTES = SAVE_RESTORE_BITS / 8.0

#: SRAM buffers (not part of save/restore; drained/refetched instead).
BUFFER_BYTES = 2 * 128  # sequence-table buffer + division-table buffer


@dataclass
class RnRRegisters:
    """Live register values for one core's RnR unit.

    The boundary registers live in :class:`repro.rnr.boundary.BoundaryTable`
    and the 2-bit prefetch state in the state machine; this dataclass holds
    the remaining scalar registers so that ``snapshot``/``restore`` can
    model the context-switch copy.
    """

    asid: int = 0
    window_size: int = 0
    seq_table_base: int = 0
    div_table_base: int = 0
    cur_struct_read: int = 0
    seq_table_len: int = 0
    div_table_len: int = 0
    cur_window: int = 0
    prefetch_pace: int = 1
    prefetch_count: int = 0
    replay_seq_ptr: int = 0
    window_struct_base: int = 0

    def snapshot(self) -> Dict[str, int]:
        """Copy-out for a context switch (Section IV-C)."""
        return dict(self.__dict__)

    def restore(self, saved: Dict[str, int]) -> None:
        """Copy-in when the process is rescheduled."""
        for name, value in saved.items():
            if not hasattr(self, name):
                raise KeyError(f"unknown RnR register {name!r}")
            setattr(self, name, value)

    def reset_replay(self) -> None:
        """Replay starts from the beginning of the stored sequence."""
        self.cur_struct_read = 0
        self.cur_window = 0
        self.prefetch_count = 0
        self.replay_seq_ptr = 0
        self.window_struct_base = 0
        self.prefetch_pace = 1
