"""The RnR programming interface (paper Table I).

========================  ====================================================
Function                  Explanation
========================  ====================================================
RnR.init()                Set ASID, allocate memory for SequenceTable and
                          DivisionTable, set the default window size
AddrBase.set(addr, size)  Add a base address with its corresponding size
AddrBase.enable(addr)     Enable the address boundary check for addr
AddrBase.disable(addr)    Disable the address boundary check for addr
WindowSize.set(size)      Set a window size different from the default
PrefetchState.start()     Enable RnR, start recording
PrefetchState.replay()    Start replay from the beginning
PrefetchState.end()       Disable RnR
PrefetchState.pause()     Pause recording/replaying
PrefetchState.resume()    Resume from the pause state
RnR.end()                 Free the memory space for metadata
========================  ====================================================

The interface is bound to a :class:`~repro.trace.builder.TraceBuilder` and
an :class:`~repro.trace.address_space.AddressSpace`: each call allocates
real (simulated) memory where needed and emits a directive into the trace,
which the hardware model interprets during simulation — the "light
hardware-software interface" of the paper.
"""

from __future__ import annotations

from typing import Optional

from repro.trace.address_space import AddressSpace, Region
from repro.trace.builder import TraceBuilder


class _AddrBase:
    """The ``AddrBase`` sub-interface."""

    def __init__(self, owner: "RnRInterface"):
        self._owner = owner

    def set(self, region: Region, count: Optional[int] = None) -> None:
        """Register a data structure: ``RnR.AddrBase.set(p, N)``.

        ``count`` (the paper's ``N``) limits the range to the first ``N``
        elements; by default the whole region is covered.
        """
        size = region.size if count is None else count * region.element_size
        if size <= 0 or size > region.size:
            raise ValueError(
                f"AddrBase.set: bad element count {count} for region {region.name}"
            )
        self._owner._emit("rnr.addr_base.set", region.base, size)

    def enable(self, region: Region) -> None:
        self._owner._emit("rnr.addr_base.enable", region.base)

    def disable(self, region: Region) -> None:
        self._owner._emit("rnr.addr_base.disable", region.base)


class _PrefetchState:
    """The ``PrefetchState`` sub-interface."""

    def __init__(self, owner: "RnRInterface"):
        self._owner = owner

    def start(self) -> None:
        self._owner._emit("rnr.state.start")

    def replay(self) -> None:
        self._owner._emit("rnr.state.replay")

    def pause(self) -> None:
        self._owner._emit("rnr.state.pause")

    def resume(self) -> None:
        self._owner._emit("rnr.state.resume")

    def end(self) -> None:
        """One past the last byte of the region."""
        self._owner._emit("rnr.state.end")


class _WindowSize:
    def __init__(self, owner: "RnRInterface"):
        self._owner = owner

    def set(self, size: int) -> None:
        if size < 1:
            raise ValueError(f"window size must be >= 1, got {size}")
        self._owner._emit("rnr.window_size.set", size)


class RnRInterface:
    """Programmer-facing handle, one per process."""

    #: Default metadata budget: bytes of sequence table per RnR.init().
    DEFAULT_SEQ_CAPACITY = 8 << 20
    DEFAULT_DIV_CAPACITY = 256 << 10

    def __init__(
        self,
        builder: TraceBuilder,
        space: AddressSpace,
        default_window: int = 16,
        seq_capacity: int = DEFAULT_SEQ_CAPACITY,
        div_capacity: int = DEFAULT_DIV_CAPACITY,
        asid: int = 1,
    ):
        self._builder = builder
        self._space = space
        self._default_window = default_window
        self._seq_capacity = seq_capacity
        self._div_capacity = div_capacity
        self._asid = asid
        self._initialized = False
        self._alloc_index = 0
        self.addr_base = _AddrBase(self)
        self.prefetch_state = _PrefetchState(self)
        self.window_size = _WindowSize(self)

    def _emit(self, op: str, *args) -> None:
        self._builder.directive(op, *args)

    # ------------------------------------------------------------------
    def init(self) -> None:
        """``RnR.init()``: allocate metadata memory, set ASID and the
        default window size."""
        if self._initialized:
            raise RuntimeError("RnR.init() called twice without RnR.end()")
        suffix = f"_{self._alloc_index}" if self._alloc_index else ""
        self._seq_region = self._space.alloc(
            f"rnr_seq{suffix}", self._seq_capacity, 1
        )
        self._div_region = self._space.alloc(
            f"rnr_div{suffix}", self._div_capacity, 1
        )
        self._alloc_index += 1
        self._initialized = True
        self._emit(
            "rnr.init",
            self._seq_region.base,
            self._seq_capacity,
            self._div_region.base,
            self._div_capacity,
            self._default_window,
            self._asid,
        )

    def end(self) -> None:
        """``RnR.end()``: free the metadata memory."""
        if not self._initialized:
            raise RuntimeError("RnR.end() without RnR.init()")
        self._space.free(self._seq_region.name)
        self._space.free(self._div_region.name)
        self._initialized = False
        self._emit("rnr.end")

    @property
    def sequence_region(self) -> Region:
        """The allocated SequenceTable memory."""
        return self._seq_region

    @property
    def division_region(self) -> Region:
        """The allocated DivisionTable memory."""
        return self._div_region

    @staticmethod
    def estimate_capacity(
        structure_bytes: int,
        expected_accesses: Optional[int] = None,
        miss_ratio: float = 1.0,
        window_size: int = 16,
        safety_factor: float = 1.5,
        seq_entry_bytes: int = 4,
        div_entry_bytes: int = 8,
    ) -> tuple:
        """Size the metadata allocation for one record iteration.

        Returns ``(sequence_bytes, division_bytes)``.  The sequence table
        needs one entry per recorded L2 miss; an upper bound is one miss
        per structure access (``expected_accesses``, defaulting to one
        access per cache line of the structure) scaled by the expected
        ``miss_ratio``.  The division table needs one word per
        ``window_size`` misses.  ``safety_factor`` covers re-misses from
        cache pressure (Fig 13 shows metadata up to ~22 % of the input
        size for the worst-locality input, well within this bound).
        """
        if structure_bytes <= 0:
            raise ValueError(f"structure_bytes must be positive, got {structure_bytes}")
        if not 0.0 < miss_ratio <= 1.0:
            raise ValueError(f"miss_ratio must be in (0, 1], got {miss_ratio}")
        if expected_accesses is None:
            expected_accesses = max(1, structure_bytes // 64)
        expected_misses = int(expected_accesses * miss_ratio * safety_factor) + 1
        sequence_bytes = expected_misses * seq_entry_bytes
        windows = expected_misses // max(1, window_size) + 2
        division_bytes = windows * div_entry_bytes
        return sequence_bytes, division_bytes
