"""The RnR prefetch-state machine (paper Fig 3, driven by Table I calls).

States and the software calls that move between them::

            start()                 replay()
    IDLE ----------> RECORD ------------------> REPLAY <---+
      ^                |  ^                      |  ^       | replay()
      |        pause() |  | resume()     pause() |  | resume()  (restart)
      |                v  |                      v  |       |
      |          RECORD_PAUSED             REPLAY_PAUSED ---+
      |                                          |
      +------------------ end() -----------------+  (from any active state)

``pause``/``resume`` also serve context switches (Section IV-C): the
architectural state is copied out/in around them.
"""

from __future__ import annotations

from enum import Enum


class PrefetchState(Enum):
    IDLE = "idle"
    RECORD = "record"
    RECORD_PAUSED = "record_paused"
    REPLAY = "replay"
    REPLAY_PAUSED = "replay_paused"


class InvalidTransition(RuntimeError):
    """Raised when software calls a Table I function in the wrong state."""


_TRANSITIONS = {
    "start": {
        PrefetchState.IDLE: PrefetchState.RECORD,
    },
    "replay": {
        PrefetchState.RECORD: PrefetchState.REPLAY,
        PrefetchState.RECORD_PAUSED: PrefetchState.REPLAY,
        PrefetchState.REPLAY: PrefetchState.REPLAY,  # restart from beginning
        PrefetchState.REPLAY_PAUSED: PrefetchState.REPLAY,
    },
    "pause": {
        PrefetchState.RECORD: PrefetchState.RECORD_PAUSED,
        PrefetchState.REPLAY: PrefetchState.REPLAY_PAUSED,
    },
    "resume": {
        PrefetchState.RECORD_PAUSED: PrefetchState.RECORD,
        PrefetchState.REPLAY_PAUSED: PrefetchState.REPLAY,
    },
    "end": {
        PrefetchState.IDLE: PrefetchState.IDLE,
        PrefetchState.RECORD: PrefetchState.IDLE,
        PrefetchState.RECORD_PAUSED: PrefetchState.IDLE,
        PrefetchState.REPLAY: PrefetchState.IDLE,
        PrefetchState.REPLAY_PAUSED: PrefetchState.IDLE,
    },
}


class PrefetchStateMachine:
    """Tracks the 2-bit prefetch-state register plus pause bookkeeping."""

    def __init__(self) -> None:
        self.state = PrefetchState.IDLE
        self.transitions: list[tuple[str, PrefetchState]] = []

    def _apply(self, call: str) -> PrefetchState:
        table = _TRANSITIONS[call]
        try:
            new_state = table[self.state]
        except KeyError:
            raise InvalidTransition(
                f"PrefetchState.{call}() is invalid in state {self.state.value!r}"
            ) from None
        self.state = new_state
        self.transitions.append((call, new_state))
        return new_state

    def start(self) -> PrefetchState:
        return self._apply("start")

    def replay(self) -> PrefetchState:
        return self._apply("replay")

    def pause(self) -> PrefetchState:
        return self._apply("pause")

    def resume(self) -> PrefetchState:
        return self._apply("resume")

    def end(self) -> PrefetchState:
        """One past the last byte of the region."""
        return self._apply("end")

    # -- queries -------------------------------------------------------------
    @property
    def recording(self) -> bool:
        return self.state is PrefetchState.RECORD

    @property
    def replaying(self) -> bool:
        return self.state is PrefetchState.REPLAY

    @property
    def paused(self) -> bool:
        return self.state in (PrefetchState.RECORD_PAUSED, PrefetchState.REPLAY_PAUSED)
