"""The Record state (paper Fig 4 left, Section V-A).

While the prefetch state register holds 'Record':

1. every demand access bounds-checks against the boundary registers;
2. reads within an enabled range increment ``Cur Struct Read`` and flag
   the memory packet;
3. a flagged access that **misses in the private L2** appends its
   (slot, block-offset) to the sequence table;
4. every ``window_size`` recorded misses, the current ``Cur Struct Read``
   value is appended to the division table — the per-window timing
   metadata that drives replay pacing.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.hierarchy import CacheHierarchy
from repro.rnr.registers import RnRRegisters
from repro.rnr.tables import DivisionTable, SequenceTable
from repro.stats import RnRStats


class Recorder:
    """Accumulates the miss sequence and window divisions."""

    def __init__(
        self,
        registers: RnRRegisters,
        sequence: SequenceTable,
        division: DivisionTable,
        stats: RnRStats,
    ):
        self.registers = registers
        self.sequence = sequence
        self.division = division
        self.stats = stats
        # Telemetry collector (None unless the run enables telemetry).
        self.telemetry = None

    def record_miss(
        self,
        slot: int,
        line_offset: int,
        cycle: int,
        hierarchy: Optional[CacheHierarchy],
    ) -> None:
        """Step 5/6 of Fig 4: write one sequence entry; close a window when
        ``window_size`` misses have accumulated."""
        registers = self.registers
        self.sequence.append_miss(slot, line_offset, cycle, hierarchy, self.stats)
        registers.seq_table_len += 1
        self.stats.sequence_entries += 1
        if registers.seq_table_len % registers.window_size == 0:
            self._close_window(cycle, hierarchy)

    def _close_window(self, cycle: int, hierarchy: Optional[CacheHierarchy]) -> None:
        registers = self.registers
        self.division.append(
            registers.cur_struct_read, cycle, hierarchy, self.stats
        )
        registers.div_table_len += 1
        self.stats.division_entries += 1
        self.stats.windows_recorded += 1
        if self.telemetry is not None:
            self.telemetry.on_window_recorded(
                registers.div_table_len - 1, cycle, registers.cur_struct_read
            )

    def finish(self, cycle: int, hierarchy: Optional[CacheHierarchy]) -> None:
        """Stop recording: close the trailing partial window and flush the
        staging buffers to memory."""
        registers = self.registers
        if registers.seq_table_len % registers.window_size != 0 or (
            registers.seq_table_len > 0 and registers.div_table_len == 0
        ):
            self._close_window(cycle, hierarchy)
        self.sequence.flush(cycle, hierarchy)
        self.division.flush(cycle, hierarchy)
