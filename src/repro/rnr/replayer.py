"""The Replay state (paper Fig 4 right, Sections V-B and V-C).

Replay walks the recorded sequence table and turns every recorded miss
back into an L2 prefetch, *paced* against the program's progress through
the target structure:

* ``Cur Struct Read`` counts demand reads to the target structure, the
  same progress metric the recorder stored in the division table;
* demand is consuming window ``w`` while
  ``Cur Struct Read < div[w]``; when the count reaches ``div[w]`` the
  window counter advances and the *next* window's misses become eligible
  for prefetching (double buffering: prefetch runs exactly one window
  ahead, bounded by half the L2 as Section III prescribes);
* within a window, pace control spreads the prefetches evenly:
  ``N_pace = StructAccessesInCurrentWindow / WindowSize`` — one prefetch
  per ``N_pace`` structure reads (Fig 5 (d)).

Three control modes reproduce the Fig 10/11 ablation:

* ``NONE`` — one prefetch per demand structure access, no window bound
  (runs ahead of the program; prefetched data is evicted before use);
* ``WINDOW`` — burst the whole next window at each window switch;
* ``WINDOW_PACE`` — window bound plus even pacing (the full design).

The metadata tables live in ordinary programmer-allocated memory, so a
buggy program can scribble on them between record and replay.  Replay
therefore *validates* every sequence entry before issuing
(:meth:`~repro.rnr.tables.SequenceTable.checked_line_addr`): a provably
malformed entry poisons its window — the remainder of that window
degrades to no-prefetch (counted in ``stats.rnr.corrupt_entries`` /
``windows_skipped``) instead of crashing the simulation or prefetching
garbage addresses.  Corrupted division entries (non-monotonic progress
counts) degrade the same way on the pacing side: the window falls back to
the nominal pace.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, Dict, Optional, Set

from repro.cache.hierarchy import CacheHierarchy
from repro.rnr.boundary import BoundaryTable
from repro.rnr.registers import RnRRegisters
from repro.rnr.tables import CorruptMetadataError, DivisionTable, SequenceTable
from repro.stats import RnRStats


class ControlMode(Enum):
    NONE = "none"
    WINDOW = "window"
    WINDOW_PACE = "window+pace"


class Replayer:
    """Issues replay prefetches with window/pace timing control."""

    def __init__(
        self,
        registers: RnRRegisters,
        boundary: BoundaryTable,
        sequence: SequenceTable,
        division: DivisionTable,
        stats: RnRStats,
        mode: ControlMode = ControlMode.WINDOW_PACE,
        issue: Optional[Callable[[int, int, int], bool]] = None,
    ):
        self.registers = registers
        self.boundary = boundary
        self.sequence = sequence
        self.division = division
        self.stats = stats
        self.mode = mode
        # issue(line_addr, cycle, window) -> bool; bound by the prefetcher.
        self._issue = issue if issue is not None else (lambda line, cycle, window: False)
        self.hierarchy: Optional[CacheHierarchy] = None
        # Telemetry collector (None unless the run enables telemetry).
        self.telemetry = None
        #: Prefetches issued per window (fault-degradation observability).
        self.issued_by_window: Dict[int, int] = {}
        #: Windows degraded to no-prefetch after a corrupt sequence entry.
        self.skipped_windows: Set[int] = set()
        self._corrupt_div_windows: Set[int] = set()

    # ------------------------------------------------------------------
    def begin(self, cycle: int) -> None:
        """Enter Replay: restart from the beginning of the sequence
        (Table I ``PrefetchState.replay()``)."""
        self.registers.reset_replay()
        self.sequence.reset_read()
        self.division.reset_read()
        self.issued_by_window = {}
        self.skipped_windows = set()
        self._corrupt_div_windows = set()
        if self.telemetry is not None:
            self.telemetry.on_replay_begin(
                cycle, len(self.division), self.registers.prefetch_pace
            )
        if self.mode is ControlMode.NONE:
            return
        # Prime the pipeline: fetch window 0 before demand starts.  Pace
        # control then keeps the pointer one window ahead of consumption;
        # pure window control bursts whole windows, so it primes both
        # buffers at once.
        prime_window = 0 if self.mode is ControlMode.WINDOW_PACE else 1
        self._prefetch_through(self._window_end_entry(prime_window), cycle, burst=True)
        self._update_pace()

    # ------------------------------------------------------------------
    # Window geometry
    # ------------------------------------------------------------------
    def _window_end_entry(self, window: int) -> int:
        """Index one past the last sequence entry of ``window``."""
        return min((window + 1) * self.registers.window_size, len(self.sequence))

    def _window_of_entry(self, index: int) -> int:
        return index // self.registers.window_size

    def _struct_reads_in_window(self, window: int) -> int:
        division = self.division
        if window >= len(division):
            return self.registers.window_size
        end = division[window]
        start = division[window - 1] if window > 0 else 0
        if end < start or end < 0 or start < 0:
            # Corrupted division entry (progress counts are monotonic by
            # construction): fall back to the nominal pace for this window
            # rather than dividing by a garbage count.
            if window not in self._corrupt_div_windows:
                self._corrupt_div_windows.add(window)
                self.stats.corrupt_entries += 1
            return self.registers.window_size
        return max(1, end - start)

    def _update_pace(self) -> None:
        """Fig 5 (d): N_pace = struct accesses in current window / W."""
        registers = self.registers
        accesses = self._struct_reads_in_window(registers.cur_window)
        registers.prefetch_pace = max(1, accesses // registers.window_size)

    # ------------------------------------------------------------------
    # Prefetch issue
    # ------------------------------------------------------------------
    def _prefetch_one(self, cycle: int) -> bool:
        """Issue the next sequence entry; returns False when exhausted.

        A provably corrupt entry poisons its window: the remaining entries
        of that window are skipped (no-prefetch degradation) and the
        pointer lands on the next window's first entry.
        """
        registers = self.registers
        index = registers.replay_seq_ptr
        if index >= len(self.sequence):
            return False
        ready = self.sequence.stream_to(index, cycle, self.hierarchy)
        if index % max(1, self.registers.window_size) == 0:
            window = self._window_of_entry(index)
            if window < len(self.division):
                ready = max(ready, self.division.stream_to(window, cycle, self.hierarchy))
        try:
            line_addr = self.sequence.checked_line_addr(index, self.boundary)
        except CorruptMetadataError:
            window = self._window_of_entry(index)
            self.stats.corrupt_entries += 1
            if window not in self.skipped_windows:
                self.skipped_windows.add(window)
                self.stats.windows_skipped += 1
                if self.telemetry is not None:
                    self.telemetry.on_window_skipped(window, cycle)
            registers.replay_seq_ptr = self._window_end_entry(window)
            return True
        registers.replay_seq_ptr = index + 1
        if line_addr is not None:
            window = self._window_of_entry(index)
            self._issue(line_addr, max(cycle, ready), window)
            registers.prefetch_count += 1
            self.issued_by_window[window] = self.issued_by_window.get(window, 0) + 1
        return True

    def _prefetch_through(self, end_index: int, cycle: int, burst: bool) -> None:
        while self.registers.replay_seq_ptr < end_index:
            if not self._prefetch_one(cycle):
                break

    # ------------------------------------------------------------------
    # Per-structure-read hook (Fig 4 Replay steps 6/7)
    # ------------------------------------------------------------------
    def on_struct_read(self, cycle: int) -> None:
        """Called for every demand read inside an enabled boundary range
        while in the Replay state (``Cur Struct Read`` already counted)."""
        registers = self.registers
        advanced = False
        while (
            registers.cur_window < len(self.division)
            and registers.cur_struct_read
            >= self.division[registers.cur_window]
        ):
            registers.window_struct_base = self.division[registers.cur_window]
            registers.cur_window += 1
            advanced = True
        if self.mode is ControlMode.NONE:
            # Uncontrolled: one prefetch per demand structure access (the
            # window counter above is tracked for accounting only).
            self._prefetch_one(cycle)
            return

        if advanced:
            self._update_pace()
            if self.telemetry is not None:
                self.telemetry.on_replay_window(
                    registers.cur_window,
                    cycle,
                    registers.prefetch_pace,
                    self._struct_reads_in_window(registers.cur_window),
                )
            # Finish anything still pending for the window demand just
            # entered — its data is needed now.
            self._prefetch_through(
                self._window_end_entry(registers.cur_window), cycle, burst=True
            )
            if self.mode is ControlMode.WINDOW:
                self._prefetch_through(
                    self._window_end_entry(registers.cur_window + 1),
                    cycle,
                    burst=True,
                )

        if self.mode is ControlMode.WINDOW_PACE:
            reads_into_window = registers.cur_struct_read - registers.window_struct_base
            if reads_into_window % registers.prefetch_pace == 0:
                allowed = self._window_end_entry(registers.cur_window + 1)
                if registers.replay_seq_ptr < allowed:
                    self._prefetch_one(cycle)
