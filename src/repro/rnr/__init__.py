"""RnR: the software-assisted record-and-replay prefetcher (the paper's
primary contribution).

* :mod:`repro.rnr.state` — the Fig 3 prefetch-state machine.
* :mod:`repro.rnr.registers` — architectural + internal register file
  (the 86.5 B of per-core state saved on a context switch).
* :mod:`repro.rnr.boundary` — spatial-region (address-range) registers.
* :mod:`repro.rnr.tables` — in-memory sequence and window-division tables
  with write-combining buffers and metadata traffic accounting.
* :mod:`repro.rnr.recorder` / :mod:`repro.rnr.replayer` — the Record and
  Replay halves of Fig 4, including the Section V-C timing control.
* :mod:`repro.rnr.api` — the Table I programming interface.
* :mod:`repro.rnr.prefetcher` — the simulator-facing prefetcher.
* :mod:`repro.rnr.hw_cost` — Section VII-B hardware overhead model.
"""

from repro.rnr.state import PrefetchState, PrefetchStateMachine
from repro.rnr.boundary import BoundaryEntry, BoundaryTable
from repro.rnr.registers import RnRRegisters
from repro.rnr.tables import DivisionTable, SequenceTable
from repro.rnr.recorder import Recorder
from repro.rnr.replayer import ControlMode, Replayer
from repro.rnr.api import RnRInterface
from repro.rnr.prefetcher import RnRPrefetcher
from repro.rnr.hw_cost import HardwareCostModel

__all__ = [
    "BoundaryEntry",
    "BoundaryTable",
    "ControlMode",
    "DivisionTable",
    "HardwareCostModel",
    "PrefetchState",
    "PrefetchStateMachine",
    "Recorder",
    "Replayer",
    "RnRInterface",
    "RnRPrefetcher",
    "RnRRegisters",
    "SequenceTable",
]
