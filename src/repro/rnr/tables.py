"""RnR metadata tables: the miss Sequence Table and the window Division
Table (Fig 4, Sections V-A/V-B).

Both tables live in ordinary memory allocated by the programmer
(``RnR.init``); the hardware holds only their base addresses plus one
128 B staging buffer each.

Record side: entries accumulate in the buffer and are written back one
cache line (64 B) at a time with non-temporal stores (posted metadata
writes).  Virtual-to-physical translation is one TLB lookup per 4 MB page
(Section V-A step 6); the current physical page register makes the common
case free.

Replay side: metadata is *streamed* back in with double buffering — the
128 B buffer holds two cache lines, and the next line is fetched while the
current one is consumed, so metadata reads are sequential, row-buffer
friendly, and off the critical path (Section V-B step 5).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cache.hierarchy import CacheHierarchy
from repro.cache.tlb import Tlb
from repro.config import LINE_SIZE
from repro.stats import RnRStats

METADATA_PAGE_BYTES = 4 << 20  # 4 MB pages for metadata (Section V-A)
BUFFER_BYTES = 128  # per-table staging buffer (double-buffered lines)


class CorruptMetadataError(ValueError):
    """A metadata entry decodes to something the hardware can prove is
    impossible (slot beyond the boundary register file, offset beyond the
    declared structure, value outside the entry encoding).

    The tables live in ordinary programmer-allocated memory, so stray
    stores *can* scribble on them; the replayer treats this error as a
    poisoned window and degrades to no-prefetch instead of prefetching
    garbage addresses."""


class MetadataTable:
    """Common machinery for the two in-memory metadata tables."""

    def __init__(self, name: str, base: int, capacity_bytes: int, entry_bytes: int):
        if entry_bytes <= 0 or capacity_bytes < entry_bytes:
            raise ValueError(
                f"{name}: bad geometry (capacity={capacity_bytes}, entry={entry_bytes})"
            )
        self.name = name
        self.base = base
        self.capacity_bytes = capacity_bytes
        self.entry_bytes = entry_bytes
        self.entries: List[int] = []
        self._entries_per_line = LINE_SIZE // entry_bytes
        self._tlb = Tlb(entries=4, page_bytes=METADATA_PAGE_BYTES)
        self._written_lines = 0
        self._fetched_lines = 0

    # -- geometry ----------------------------------------------------------
    @property
    def capacity_entries(self) -> int:
        """Maximum entries the allocation can hold."""
        return self.capacity_bytes // self.entry_bytes

    @property
    def size_bytes(self) -> int:
        """Bytes currently used."""
        return len(self.entries) * self.entry_bytes

    def address_of_entry(self, index: int) -> int:
        """Virtual address of entry ``index``."""
        return self.base + index * self.entry_bytes

    def line_of_entry(self, index: int) -> int:
        """Metadata cache-line index of entry ``index``."""
        return index // self._entries_per_line

    # -- record side -------------------------------------------------------
    def append(
        self,
        value: int,
        cycle: int,
        hierarchy: Optional[CacheHierarchy],
        stats: Optional[RnRStats] = None,
    ) -> None:
        """Append one entry; emits a metadata write per completed line."""
        if len(self.entries) >= self.capacity_entries:
            raise OverflowError(
                f"{self.name} overflow: programmer allocated "
                f"{self.capacity_bytes} bytes ({self.capacity_entries} entries)"
            )
        index = len(self.entries)
        self.entries.append(value)
        address = self.address_of_entry(index)
        if stats is not None and not self._tlb.access(address):
            stats.tlb_lookups += 1
        if (index + 1) % self._entries_per_line == 0 and hierarchy is not None:
            line_base = self.base + self._written_lines * LINE_SIZE
            hierarchy.metadata_write(line_base, cycle)
            self._written_lines += 1

    def flush(self, cycle: int, hierarchy: Optional[CacheHierarchy]) -> None:
        """Write out the partially-filled last buffer line."""
        full_lines = (len(self.entries) + self._entries_per_line - 1) // self._entries_per_line
        while self._written_lines < full_lines:
            if hierarchy is not None:
                line_base = self.base + self._written_lines * LINE_SIZE
                hierarchy.metadata_write(line_base, cycle)
            self._written_lines += 1

    # -- replay side ----------------------------------------------------------
    def reset_read(self) -> None:
        """Restart streaming from the table head."""
        self._fetched_lines = 0

    def stream_to(
        self,
        index: int,
        cycle: int,
        hierarchy: Optional[CacheHierarchy],
        lookahead_lines: int = 2,
    ) -> int:
        """Ensure metadata through entry ``index`` (+lookahead) is on chip.

        Returns the cycle at which entry ``index`` is available.  With
        double buffering the fetch almost always completed long ago, so the
        common return value is ``cycle``.
        """
        if index >= len(self.entries):
            return cycle
        need_line = self.line_of_entry(index)
        target = min(
            need_line + lookahead_lines,
            self.line_of_entry(len(self.entries) - 1),
        )
        ready = cycle
        while self._fetched_lines <= target:
            line_base = self.base + self._fetched_lines * LINE_SIZE
            completion = (
                hierarchy.metadata_read(line_base, cycle)
                if hierarchy is not None
                else cycle
            )
            if self._fetched_lines == need_line:
                ready = completion
            self._fetched_lines += 1
        return ready

    # -- fault injection ---------------------------------------------------
    # The tables are plain memory owned by the program, so tests (and the
    # chaos harness) can model what a buggy program does to them.
    def corrupt_entry(self, index: int, value: Optional[int] = None) -> int:
        """Overwrite entry ``index`` with a malformed ``value`` (default: a
        pattern no recorder can produce).  Returns the previous value."""
        previous = self.entries[index]
        if value is None:
            value = -(previous + 0x5A5A_5A5A) - 1  # negative: outside any encoding
        self.entries[index] = value
        return previous

    def truncate(self, length: int) -> int:
        """Model a partially lost table: drop entries beyond ``length``.
        Returns how many entries were removed."""
        if length < 0:
            raise ValueError(f"cannot truncate to negative length {length}")
        removed = max(0, len(self.entries) - length)
        del self.entries[length:]
        full_lines = (length + self._entries_per_line - 1) // self._entries_per_line
        self._written_lines = min(self._written_lines, full_lines)
        self._fetched_lines = min(self._fetched_lines, full_lines)
        return removed

    def __len__(self) -> int:
        return len(self.entries)

    def __getitem__(self, index: int) -> int:
        return self.entries[index]


class SequenceTable(MetadataTable):
    """Records (slot, line-offset) pairs of flagged L2 misses.

    The hardware entry is the block offset within the structure; the
    boundary-register slot rides in the entry's top bits (the paper's two
    boundary registers need one bit).
    """

    SLOT_SHIFT = 28

    def __init__(self, base: int, capacity_bytes: int, entry_bytes: int = 4):
        super().__init__("SequenceTable", base, capacity_bytes, entry_bytes)

    def append_miss(
        self,
        slot: int,
        line_offset: int,
        cycle: int,
        hierarchy: Optional[CacheHierarchy],
        stats: Optional[RnRStats] = None,
    ) -> None:
        if line_offset >= (1 << self.SLOT_SHIFT):
            raise OverflowError(
                f"line offset {line_offset} exceeds sequence entry encoding"
            )
        self.append((slot << self.SLOT_SHIFT) | line_offset, cycle, hierarchy, stats)

    def miss_at(self, index: int) -> Tuple[int, int]:
        """Decode entry ``index`` into (slot, line_offset)."""
        raw = self.entries[index]
        return raw >> self.SLOT_SHIFT, raw & ((1 << self.SLOT_SHIFT) - 1)

    def checked_line_addr(self, index: int, boundary) -> Optional[int]:
        """Decode entry ``index`` and resolve it against ``boundary``
        (a :class:`~repro.rnr.boundary.BoundaryTable`), validating every
        step the hardware can check.

        Returns the prefetch line address; ``None`` for the benign
        unresolvable case (recorded slot disabled and not exactly one
        enabled register — the paper's base-swap convention cannot pick a
        target); raises :class:`CorruptMetadataError` for an entry that no
        recorder could have written.
        """
        raw = self.entries[index]
        if raw < 0 or raw >= (1 << (8 * self.entry_bytes)):
            raise CorruptMetadataError(
                f"sequence entry {index} value {raw:#x} outside the "
                f"{self.entry_bytes}-byte encoding"
            )
        slot, offset = raw >> self.SLOT_SHIFT, raw & ((1 << self.SLOT_SHIFT) - 1)
        entries = boundary.entries
        if slot >= boundary.max_entries or slot >= len(entries):
            raise CorruptMetadataError(
                f"sequence entry {index} names boundary slot {slot}, but only "
                f"{len(entries)} of {boundary.max_entries} registers are set"
            )
        entry = entries[slot]
        if not entry.enabled:
            enabled = [e for e in entries if e.enabled]
            if len(enabled) != 1:
                return None  # benign: base-swap with no unambiguous target
            entry = enabled[0]
        if offset * LINE_SIZE >= entry.size:
            raise CorruptMetadataError(
                f"sequence entry {index} offset {offset} is beyond the "
                f"{entry.size}-byte structure at {entry.base:#x}"
            )
        return (entry.base + offset * LINE_SIZE) // LINE_SIZE


class DivisionTable(MetadataTable):
    """Per-window progress counts: ``div[k]`` is the total number of
    structure reads seen when the k-th window of misses completed
    (Section V-A step 7).  Replay switches windows when ``Cur Struct Read``
    reaches ``div[cur_window + 1]``."""

    def __init__(self, base: int, capacity_bytes: int, entry_bytes: int = 8):
        super().__init__("DivisionTable", base, capacity_bytes, entry_bytes)

    def struct_reads_at_window_end(self, window: int) -> int:
        """Cumulative struct reads when the window closed."""
        return self.entries[window]

    @property
    def windows(self) -> int:
        """Number of recorded windows."""
        return len(self.entries)
