"""Out-of-order core approximation.

The model captures the three effects that matter for prefetcher studies:

* non-memory instructions retire at ``width`` per cycle;
* loads overlap (memory-level parallelism) until either the ROB fills
  (in-order retirement cannot run more than ``rob_entries`` instructions
  past the oldest incomplete load) or the LSQ fills;
* a long-latency miss eventually stalls retirement, so reducing misses
  (what prefetching does) directly raises IPC.

The MSHR files in the cache hierarchy bound how many of those overlapped
loads can actually be outstanding misses, which is what bounds achievable
MLP in ChampSim too.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from repro.config import CoreConfig


class Core:
    """Cycle accounting for one hardware thread."""

    def __init__(self, config: CoreConfig):
        self.config = config
        self.cycle = 0
        self.instructions = 0
        self._width = config.width
        self._rob = config.rob_entries
        self._lsq = config.lsq_entries
        # (instruction number, completion cycle) of incomplete loads.
        self._pending: Deque[Tuple[int, int]] = deque()
        self._gap_remainder = 0

    # ------------------------------------------------------------------
    def advance(self, gap_instructions: int) -> None:
        """Retire ``gap_instructions`` non-memory instructions."""
        if gap_instructions <= 0:
            return
        self.instructions += gap_instructions
        total = gap_instructions + self._gap_remainder
        self.cycle += total // self._width
        self._gap_remainder = total % self._width
        # _drain_completed inlined (one call per trace entry adds up).
        pending = self._pending
        cycle = self.cycle
        while pending and pending[0][1] <= cycle:
            pending.popleft()

    def _drain_completed(self) -> None:
        pending = self._pending
        cycle = self.cycle
        while pending and pending[0][1] <= cycle:
            pending.popleft()

    # ------------------------------------------------------------------
    def issue_cycle(self) -> int:
        """The cycle at which the next memory reference can issue."""
        # Hot path: _drain_completed and _stall_for_structures inlined
        # (one call per memory reference each adds up).
        pending = self._pending
        cycle = self.cycle
        while pending and pending[0][1] <= cycle:
            pending.popleft()
        if pending:
            instructions = self.instructions
            rob = self._rob
            lsq = self._lsq
            while pending:
                oldest_instr, oldest_done = pending[0]
                if instructions - oldest_instr < rob and len(pending) < lsq:
                    break
                if oldest_done > cycle:
                    cycle = oldest_done
                pending.popleft()
            self.cycle = cycle
        return cycle

    def issue_after(self, gap_instructions: int) -> int:
        """Fused ``advance(gap)`` + ``issue_cycle()`` (engine hot loops).

        Every memory reference in a trace is preceded by a (possibly
        zero) gap of non-memory instructions; fusing the two calls saves
        a method dispatch per trace entry and shares one drain scan of
        the pending-load deque instead of running it in both halves.
        The arithmetic is identical to calling the two methods in
        sequence.
        """
        if gap_instructions > 0:
            self.instructions += gap_instructions
            total = gap_instructions + self._gap_remainder
            self.cycle += total // self._width
            self._gap_remainder = total % self._width
        pending = self._pending
        cycle = self.cycle
        while pending and pending[0][1] <= cycle:
            pending.popleft()
        if pending:
            instructions = self.instructions
            rob = self._rob
            lsq = self._lsq
            while pending:
                oldest_instr, oldest_done = pending[0]
                if instructions - oldest_instr < rob and len(pending) < lsq:
                    break
                if oldest_done > cycle:
                    cycle = oldest_done
                pending.popleft()
            self.cycle = cycle
        return cycle

    def retire_load(self, completion: int) -> None:
        """Account one load instruction completing at ``completion``."""
        instructions = self.instructions = self.instructions + 1
        total = 1 + self._gap_remainder
        self.cycle += total // self._width
        self._gap_remainder = total % self._width
        if completion > self.cycle:
            self._pending.append((instructions, completion))

    def retire_store(self, completion: int) -> None:
        """Stores commit without blocking retirement (posted via the
        store buffer), but still consume a retire slot."""
        self.instructions += 1
        total = 1 + self._gap_remainder
        self.cycle += total // self._width
        self._gap_remainder = total % self._width

    def finish(self) -> int:
        """Drain all outstanding loads; returns the final cycle."""
        if self._pending:
            last = max(done for _, done in self._pending)
            if last > self.cycle:
                self.cycle = last
            self._pending.clear()
        return self.cycle

    @property
    def outstanding_loads(self) -> int:
        """Loads issued but not yet completed."""
        return len(self._pending)
