"""Out-of-order core approximation.

The model captures the three effects that matter for prefetcher studies:

* non-memory instructions retire at ``width`` per cycle;
* loads overlap (memory-level parallelism) until either the ROB fills
  (in-order retirement cannot run more than ``rob_entries`` instructions
  past the oldest incomplete load) or the LSQ fills;
* a long-latency miss eventually stalls retirement, so reducing misses
  (what prefetching does) directly raises IPC.

The MSHR files in the cache hierarchy bound how many of those overlapped
loads can actually be outstanding misses, which is what bounds achievable
MLP in ChampSim too.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from repro.config import CoreConfig


class Core:
    """Cycle accounting for one hardware thread."""

    def __init__(self, config: CoreConfig):
        self.config = config
        self.cycle = 0
        self.instructions = 0
        self._width = config.width
        self._rob = config.rob_entries
        self._lsq = config.lsq_entries
        # (instruction number, completion cycle) of incomplete loads.
        self._pending: Deque[Tuple[int, int]] = deque()
        self._gap_remainder = 0

    # ------------------------------------------------------------------
    def advance(self, gap_instructions: int) -> None:
        """Retire ``gap_instructions`` non-memory instructions."""
        if gap_instructions <= 0:
            return
        self.instructions += gap_instructions
        total = gap_instructions + self._gap_remainder
        self.cycle += total // self._width
        self._gap_remainder = total % self._width
        self._drain_completed()

    def _drain_completed(self) -> None:
        pending = self._pending
        cycle = self.cycle
        while pending and pending[0][1] <= cycle:
            pending.popleft()

    def _stall_for_structures(self) -> None:
        """Block until ROB and LSQ have room for one more load."""
        pending = self._pending
        while pending:
            oldest_instr, oldest_done = pending[0]
            rob_full = self.instructions - oldest_instr >= self._rob
            lsq_full = len(pending) >= self._lsq
            if not rob_full and not lsq_full:
                break
            if oldest_done > self.cycle:
                self.cycle = oldest_done
            pending.popleft()

    # ------------------------------------------------------------------
    def issue_cycle(self) -> int:
        """The cycle at which the next memory reference can issue."""
        self._drain_completed()
        self._stall_for_structures()
        return self.cycle

    def retire_load(self, completion: int) -> None:
        """Account one load instruction completing at ``completion``."""
        self.instructions += 1
        self._bump_retire_slot()
        if completion > self.cycle:
            self._pending.append((self.instructions, completion))

    def retire_store(self, completion: int) -> None:
        """Stores commit without blocking retirement (posted via the
        store buffer), but still consume a retire slot."""
        self.instructions += 1
        self._bump_retire_slot()

    def _bump_retire_slot(self) -> None:
        total = 1 + self._gap_remainder
        self.cycle += total // self._width
        self._gap_remainder = total % self._width

    def finish(self) -> int:
        """Drain all outstanding loads; returns the final cycle."""
        if self._pending:
            last = max(done for _, done in self._pending)
            if last > self.cycle:
                self.cycle = last
            self._pending.clear()
        return self.cycle

    @property
    def outstanding_loads(self) -> int:
        """Loads issued but not yet completed."""
        return len(self._pending)
