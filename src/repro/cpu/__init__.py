"""Trace-driven out-of-order core timing model (4-wide, ROB/LSQ-bounded
miss overlap), standing in for ChampSim's pipeline model."""

from repro.cpu.core import Core

__all__ = ["Core"]
