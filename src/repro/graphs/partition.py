"""Graph partitioning for the SPMD workload mode.

The paper partitions inputs with METIS [29] into four parts, one per
worker core.  METIS is a native library we cannot ship, so this module
implements a multilevel-flavoured substitute with the same *goal* —
balanced parts with low edge cut and good intra-part locality — which is
all the memory system observes: BFS region growing from spread-out seeds,
followed by a greedy boundary-refinement pass (a light Kernighan-Lin).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graphs.csr import CSRGraph


def partition_bfs(graph: CSRGraph, parts: int, seed: int = 1, refine_passes: int = 1) -> np.ndarray:
    """Assign every vertex to one of ``parts`` partitions.

    Returns an int array of length ``num_vertices`` with values in
    ``[0, parts)``.  Parts are balanced to within one BFS frontier.
    """
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    num_vertices = graph.num_vertices
    if parts == 1:
        return np.zeros(num_vertices, dtype=np.int32)
    if parts > num_vertices:
        raise ValueError(f"more parts ({parts}) than vertices ({num_vertices})")

    undirected = graph.symmetrized()
    assignment = np.full(num_vertices, -1, dtype=np.int32)
    capacity = (num_vertices + parts - 1) // parts
    sizes = np.zeros(parts, dtype=np.int64)

    # Seeds spread across the id space (good for locality-ordered graphs).
    seeds = [int(i * num_vertices / parts) for i in range(parts)]
    queues = [deque([seed_vertex]) for seed_vertex in seeds]

    remaining = num_vertices
    unassigned_scan = 0
    while remaining:
        progressed = False
        for part in range(parts):
            if sizes[part] >= capacity:
                continue
            queue = queues[part]
            while queue and sizes[part] < capacity:
                vertex = queue.popleft()
                if assignment[vertex] != -1:
                    continue
                assignment[vertex] = part
                sizes[part] += 1
                remaining -= 1
                progressed = True
                for neighbor in undirected.neighbors(vertex):
                    if assignment[neighbor] == -1:
                        queue.append(int(neighbor))
                break  # round-robin one vertex per part for balance
        if not progressed:
            # Disconnected leftovers: hand them to the emptiest parts.
            while unassigned_scan < num_vertices and assignment[unassigned_scan] != -1:
                unassigned_scan += 1
            if unassigned_scan >= num_vertices:
                break
            part = int(np.argmin(sizes))
            queues[part].append(unassigned_scan)

    for _ in range(refine_passes):
        _refine(undirected, assignment, sizes, capacity)
    return assignment


def _refine(
    graph: CSRGraph, assignment: np.ndarray, sizes: np.ndarray, capacity: int
) -> None:
    """One greedy pass: move boundary vertices to the neighbouring part
    where most of their neighbours live, if balance allows."""
    parts = sizes.size
    for vertex in range(graph.num_vertices):
        current = assignment[vertex]
        neighbors = graph.neighbors(vertex)
        if neighbors.size == 0:
            continue
        counts = np.bincount(assignment[neighbors], minlength=parts)
        best = int(np.argmax(counts))
        if (
            best != current
            and counts[best] > counts[current]
            and sizes[best] < capacity
            and sizes[current] > 1
        ):
            assignment[vertex] = best
            sizes[best] += 1
            sizes[current] -= 1


def edge_cut(graph: CSRGraph, assignment: np.ndarray) -> int:
    """Number of edges whose endpoints land in different parts."""
    src = np.repeat(np.arange(graph.num_vertices), graph.degrees())
    return int(np.sum(assignment[src] != assignment[graph.targets]))


def partition_vertex_ranges(assignment: np.ndarray, parts: int) -> list:
    """Vertex index lists per part (what each SPMD worker iterates over)."""
    return [np.nonzero(assignment == part)[0] for part in range(parts)]
