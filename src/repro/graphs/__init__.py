"""Graph substrate: CSR graphs, topology-class generators standing in for
the paper's SNAP inputs (Table III), and a METIS-like partitioner."""

from repro.graphs.csr import CSRGraph
from repro.graphs.generators import (
    community_graph,
    preferential_attachment,
    road_network,
    uniform_random,
)
from repro.graphs.partition import edge_cut, partition_bfs
from repro.graphs import datasets

__all__ = [
    "CSRGraph",
    "community_graph",
    "datasets",
    "edge_cut",
    "partition_bfs",
    "preferential_attachment",
    "road_network",
    "uniform_random",
]
