"""Synthetic graph generators matched to the topology classes of the
paper's inputs (Table III).

The paper's graphs are too large to simulate in Python (com-orkut has
117 M edges), so each input is replaced by a scaled generator of the same
*locality class* — the property that determines prefetcher behaviour:

* ``uniform_random`` — urand: every edge endpoint uniform over V; no
  spatial or temporal structure whatsoever (the paper's hardest input);
* ``community_graph`` — amazon / com-orkut: planted-partition topology
  (most edges inside a community, a fraction global), giving the moderate
  clustering of co-purchase and social graphs;
* ``preferential_attachment`` — heavy-tailed degree distribution used for
  social-network ablations;
* ``road_network`` — roadUSA: a 2-D lattice with perturbations; vertex ids
  follow the grid so neighbours are nearby in memory (high locality, the
  input where conventional prefetchers do well).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.csr import CSRGraph


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def uniform_random(num_vertices: int, avg_degree: int = 8, seed: int = 1) -> CSRGraph:
    """Uniform-random digraph (the paper's synthetic *urand*)."""
    if num_vertices < 2:
        raise ValueError(f"need >= 2 vertices, got {num_vertices}")
    rng = _rng(seed)
    num_edges = num_vertices * avg_degree
    src = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    dst = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    keep = src != dst
    pairs = np.stack([src[keep], dst[keep]], axis=1)
    return CSRGraph.from_edges(num_vertices, pairs)


def community_graph(
    num_vertices: int,
    num_communities: int = 64,
    avg_degree: int = 8,
    intra_fraction: float = 0.8,
    seed: int = 1,
) -> CSRGraph:
    """Planted-partition graph (amazon / com-orkut locality class).

    ``intra_fraction`` of the edges stay within a vertex's community
    (vertices of a community are contiguous in id space, as relabelled
    real-world graphs typically are), the rest go anywhere.
    """
    if num_communities < 1 or num_communities > num_vertices:
        raise ValueError(
            f"num_communities must be in [1, {num_vertices}], got {num_communities}"
        )
    if not 0.0 <= intra_fraction <= 1.0:
        raise ValueError(f"intra_fraction must be in [0, 1], got {intra_fraction}")
    rng = _rng(seed)
    community_size = num_vertices // num_communities
    num_edges = num_vertices * avg_degree
    src = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    intra = rng.random(num_edges) < intra_fraction
    community_base = (src // community_size) * community_size
    local_dst = community_base + rng.integers(
        0, community_size, size=num_edges, dtype=np.int64
    )
    global_dst = rng.integers(0, num_vertices, size=num_edges, dtype=np.int64)
    dst = np.where(intra, np.minimum(local_dst, num_vertices - 1), global_dst)
    keep = src != dst
    pairs = np.stack([src[keep], dst[keep]], axis=1)
    return CSRGraph.from_edges(num_vertices, pairs)


def preferential_attachment(
    num_vertices: int, out_degree: int = 8, seed: int = 1
) -> CSRGraph:
    """Barabási–Albert-style digraph with a heavy-tailed in-degree."""
    if num_vertices <= out_degree:
        raise ValueError(
            f"need more vertices ({num_vertices}) than out_degree ({out_degree})"
        )
    rng = _rng(seed)
    sources = []
    targets = []
    # Seed clique over the first out_degree + 1 vertices.
    for v in range(out_degree + 1):
        for u in range(out_degree + 1):
            if u != v:
                sources.append(v)
                targets.append(u)
    endpoint_pool = list(targets)
    for v in range(out_degree + 1, num_vertices):
        picks = rng.integers(0, len(endpoint_pool), size=out_degree)
        for pick in picks:
            u = endpoint_pool[pick]
            sources.append(v)
            targets.append(u)
            endpoint_pool.append(u)
            endpoint_pool.append(v)
    pairs = np.stack(
        [np.asarray(sources, dtype=np.int64), np.asarray(targets, dtype=np.int64)],
        axis=1,
    )
    return CSRGraph.from_edges(num_vertices, pairs)


def road_network(
    width: int, height: int, extra_fraction: float = 0.05, seed: int = 1
) -> CSRGraph:
    """2-D lattice road map (roadUSA locality class).

    Vertices are grid points numbered row-major, connected to their grid
    neighbours, plus a small fraction of short 'diagonal shortcut' roads.
    Average degree ~3-4 like real road networks.
    """
    if width < 2 or height < 2:
        raise ValueError(f"grid must be at least 2x2, got {width}x{height}")
    num_vertices = width * height
    rng = _rng(seed)
    ids = np.arange(num_vertices).reshape(height, width)
    horizontal = np.stack([ids[:, :-1].ravel(), ids[:, 1:].ravel()], axis=1)
    vertical = np.stack([ids[:-1, :].ravel(), ids[1:, :].ravel()], axis=1)
    pairs = np.concatenate([horizontal, vertical])
    pairs = np.concatenate([pairs, pairs[:, ::-1]])  # both directions
    num_extra = int(num_vertices * extra_fraction)
    if num_extra:
        base = rng.integers(0, num_vertices, size=num_extra, dtype=np.int64)
        jump = rng.integers(-2 * width, 2 * width + 1, size=num_extra, dtype=np.int64)
        other = np.clip(base + jump, 0, num_vertices - 1)
        keep = base != other
        extra = np.stack([base[keep], other[keep]], axis=1)
        pairs = np.concatenate([pairs, extra, extra[:, ::-1]])
    return CSRGraph.from_edges(num_vertices, pairs)
