"""Named graph inputs (paper Table III), scaled.

==========  ==========================  =========================  =========
Name        Paper input                 Topology class             Paper size
==========  ==========================  =========================  =========
urand       synthetic uniform random    no locality                2^24 V
amazon      SNAP com-amazon [32]        co-purchase communities    335 K / 926 K
com-orkut   SNAP com-orkut              dense social communities   3.1 M / 117 M
roadUSA     DIMACS road network         planar, near-diagonal      23.9 M / 58.3 M
==========  ==========================  =========================  =========

Scaled sizes keep the working set : LLC ratio of the paper's setup (inputs
several times the LLC) against :meth:`repro.config.SystemConfig.experiment`.
Two scales are provided: ``"bench"`` (default, used by the benchmark
harness) and ``"test"`` (fast unit tests).
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.graphs.csr import CSRGraph
from repro.graphs.generators import community_graph, road_network, uniform_random

_BENCH_V = 16384
_TEST_V = 1536

GRAPH_NAMES = ("urand", "amazon", "com-orkut", "roadUSA")


def _make_urand(num_vertices: int) -> CSRGraph:
    return uniform_random(num_vertices, avg_degree=4, seed=11)


def _make_amazon(num_vertices: int) -> CSRGraph:
    # Co-purchase graph: mostly-local edges, communities of ~1K vertices —
    # large enough to overflow the (scaled) private caches but to hit in
    # the LLC, the locality class of the real com-amazon.
    return community_graph(
        num_vertices,
        num_communities=max(2, num_vertices // 1024),
        avg_degree=6,
        intra_fraction=0.85,
        seed=12,
    )


def _make_orkut(num_vertices: int) -> CSRGraph:
    # Social graph: smaller vertex set but much denser, larger communities
    # and more global edges (com-orkut has ~38 edges/vertex at full size).
    return community_graph(
        max(2, num_vertices // 2),
        num_communities=max(2, num_vertices // 4096),
        avg_degree=12,
        intra_fraction=0.6,
        seed=13,
    )


def _make_road(num_vertices: int) -> CSRGraph:
    side = max(2, int(num_vertices**0.5))
    return road_network(side, side, extra_fraction=0.05, seed=14)


_FACTORIES: Dict[str, Callable[[int], CSRGraph]] = {
    "urand": _make_urand,
    "amazon": _make_amazon,
    "com-orkut": _make_orkut,
    "roadUSA": _make_road,
}

_SCALES: Dict[str, int] = {"bench": _BENCH_V, "test": _TEST_V}

_CACHE: Dict[Tuple[str, str], CSRGraph] = {}


def make_graph(name: str, scale: str = "bench") -> CSRGraph:
    """Build (and memoize) a named input graph."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown graph {name!r}; known: {', '.join(GRAPH_NAMES)}"
        ) from None
    try:
        num_vertices = _SCALES[scale]
    except KeyError:
        raise ValueError(f"unknown scale {scale!r}; known: bench, test") from None
    key = (name, scale)
    if key not in _CACHE:
        _CACHE[key] = factory(num_vertices)
    return _CACHE[key]
