"""Compressed-sparse-row graph container.

The layout matches what Ligra/X-Stream binaries put in memory — an offsets
array indexed by vertex and a flat targets array — because the *addresses*
of these arrays are what the prefetchers see.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

OFFSET_DTYPE = np.int64
TARGET_DTYPE = np.int32


class CSRGraph:
    """A directed graph in CSR form.

    ``offsets`` has ``num_vertices + 1`` entries; the neighbours of vertex
    ``v`` are ``targets[offsets[v]:offsets[v + 1]]``.
    """

    def __init__(self, offsets: np.ndarray, targets: np.ndarray):
        offsets = np.asarray(offsets, dtype=OFFSET_DTYPE)
        targets = np.asarray(targets, dtype=TARGET_DTYPE)
        if offsets.ndim != 1 or targets.ndim != 1:
            raise ValueError("offsets and targets must be 1-D arrays")
        if offsets.size == 0:
            raise ValueError("offsets must have at least one entry")
        if offsets[0] != 0 or offsets[-1] != targets.size:
            raise ValueError(
                f"bad CSR bounds: offsets[0]={offsets[0]}, "
                f"offsets[-1]={offsets[-1]}, targets={targets.size}"
            )
        if np.any(np.diff(offsets) < 0):
            raise ValueError("offsets must be non-decreasing")
        num_vertices = offsets.size - 1
        if targets.size and (targets.min() < 0 or targets.max() >= num_vertices):
            raise ValueError("target vertex id out of range")
        self.offsets = offsets
        self.targets = targets

    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls, num_vertices: int, edges: Iterable[Tuple[int, int]]
    ) -> "CSRGraph":
        """Build from an (src, dst) edge list (kept in the given order
        within each source)."""
        edge_array = np.asarray(list(edges), dtype=np.int64)
        if edge_array.size == 0:
            return cls(np.zeros(num_vertices + 1, dtype=OFFSET_DTYPE), np.empty(0))
        src = edge_array[:, 0]
        dst = edge_array[:, 1]
        if src.min() < 0 or src.max() >= num_vertices:
            raise ValueError("source vertex id out of range")
        order = np.argsort(src, kind="stable")
        counts = np.bincount(src, minlength=num_vertices)
        offsets = np.concatenate(([0], np.cumsum(counts)))
        return cls(offsets, dst[order])

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices."""
        return self.offsets.size - 1

    @property
    def num_edges(self) -> int:
        """Number of edges."""
        return self.targets.size

    def out_degree(self, vertex: int) -> int:
        """Out-degree of one vertex."""
        return int(self.offsets[vertex + 1] - self.offsets[vertex])

    def degrees(self) -> np.ndarray:
        """Out-degree of every vertex."""
        return np.diff(self.offsets)

    def neighbors(self, vertex: int) -> np.ndarray:
        """Neighbour ids of one vertex."""
        return self.targets[self.offsets[vertex] : self.offsets[vertex + 1]]

    def edge_pairs(self) -> np.ndarray:
        """All edges as an (E, 2) array (edge-centric processing order)."""
        src = np.repeat(np.arange(self.num_vertices), self.degrees())
        return np.stack([src, self.targets.astype(np.int64)], axis=1)

    # ------------------------------------------------------------------
    def transpose(self) -> "CSRGraph":
        """The reverse graph (in-edges become out-edges) — what pull-based
        PageRank iterates over."""
        num_vertices = self.num_vertices
        counts = np.bincount(self.targets, minlength=num_vertices)
        offsets = np.concatenate(([0], np.cumsum(counts, dtype=OFFSET_DTYPE)))
        src = np.repeat(np.arange(num_vertices, dtype=TARGET_DTYPE), self.degrees())
        order = np.argsort(self.targets, kind="stable")
        return CSRGraph(offsets, src[order])

    def symmetrized(self) -> "CSRGraph":
        """Union of the graph and its transpose, duplicates removed."""
        src = np.repeat(np.arange(self.num_vertices, dtype=np.int64), self.degrees())
        dst = self.targets.astype(np.int64)
        all_src = np.concatenate([src, dst])
        all_dst = np.concatenate([dst, src])
        keys = all_src * self.num_vertices + all_dst
        _, unique_idx = np.unique(keys, return_index=True)
        pairs = np.stack([all_src[unique_idx], all_dst[unique_idx]], axis=1)
        return CSRGraph.from_edges(self.num_vertices, pairs)

    # ------------------------------------------------------------------
    @property
    def input_bytes(self) -> int:
        """Memory footprint of the graph structure (Fig 13 denominator)."""
        return (
            self.offsets.size * self.offsets.itemsize
            + self.targets.size * self.targets.itemsize
        )

    def locality_score(self) -> float:
        """Mean |dst - src| / V — 0 for perfectly local graphs (roads),
        ~1/3 for uniform random.  Used in dataset characterisation tests."""
        if self.num_edges == 0:
            return 0.0
        src = np.repeat(np.arange(self.num_vertices), self.degrees())
        spread = np.abs(self.targets.astype(np.int64) - src)
        return float(spread.mean() / max(1, self.num_vertices))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CSRGraph(V={self.num_vertices}, E={self.num_edges})"
