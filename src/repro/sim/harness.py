"""High-level one-call comparison harness.

Wraps the build-trace / simulate / compare pattern used by the examples
and by downstream users:

    from repro.sim.harness import compare_prefetchers
    results = compare_prefetchers(workload, ["nextline", "rnr"])
    print(results["rnr"].amortized_speedup)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.config import SystemConfig
from repro.prefetchers import make_prefetcher
from repro.prefetchers.composite import CompositePrefetcher
from repro.prefetchers.droplet import DropletPrefetcher
from repro.prefetchers.imp import IMPPrefetcher
from repro.sim import metrics
from repro.sim.engine import SimulationEngine
from repro.stats import SimStats
from repro.workloads.base import Workload


@dataclass
class ComparisonResult:
    """One prefetcher's outcome against the shared baseline."""

    name: str
    stats: SimStats
    baseline: SimStats

    @property
    def speedup(self) -> float:
        """End-to-end speedup over the no-prefetcher baseline."""
        return metrics.speedup(self.baseline, self.stats)

    @property
    def amortized_speedup(self) -> float:
        """100-iteration amortized speedup (paper Fig 6)."""
        return metrics.amortized_speedup(self.baseline, self.stats)

    @property
    def accuracy(self) -> float:
        """Useful / issued prefetches (paper Fig 9)."""
        return metrics.accuracy(self.stats)

    @property
    def coverage(self) -> float:
        """Useful prefetches / baseline misses (paper Fig 8)."""
        return metrics.coverage(self.baseline, self.stats)

    @property
    def extra_traffic(self) -> float:
        """Additional off-chip traffic ratio (paper Fig 12)."""
        return metrics.additional_traffic_ratio(self.baseline, self.stats)


def _wire_callbacks(prefetcher, workload: Workload) -> None:
    children = (
        prefetcher.children
        if isinstance(prefetcher, CompositePrefetcher)
        else [prefetcher]
    )
    for child in children:
        if isinstance(child, DropletPrefetcher):
            child.resolver = getattr(workload, "edge_line_values", None)
        if isinstance(child, IMPPrefetcher):
            child.value_reader = workload.read_int


def compare_prefetchers(
    workload: Workload,
    prefetchers: Sequence[str],
    config: Optional[SystemConfig] = None,
) -> Dict[str, ComparisonResult]:
    """Run ``workload`` under each named prefetcher plus the baseline.

    The workload's traces (with and without RnR annotations) are built
    once; data-dependent prefetchers (DROPLET, IMP) are wired to the
    workload's resolver callbacks automatically, as in the paper's setup.
    """
    config = config if config is not None else SystemConfig.experiment()
    plain_trace = workload.build_trace(rnr=False)
    annotated_trace = None
    baseline = SimulationEngine(config).run(plain_trace)

    results: Dict[str, ComparisonResult] = {}
    for name in prefetchers:
        if name == "baseline":
            results[name] = ComparisonResult(name, baseline, baseline)
            continue
        uses_rnr = "rnr" in name
        if uses_rnr and annotated_trace is None:
            annotated_trace = workload.build_trace(rnr=True)
        prefetcher = make_prefetcher(name)
        _wire_callbacks(prefetcher, workload)
        trace = annotated_trace if uses_rnr else plain_trace
        stats = SimulationEngine(config, prefetcher).run(trace)
        results[name] = ComparisonResult(name, stats, baseline)
    return results
