"""Single-core trace-driven simulation engine.

Couples one :class:`~repro.cpu.core.Core` to a
:class:`~repro.cache.hierarchy.CacheHierarchy` and an attached prefetcher,
interprets embedded RnR directives, and tracks per-phase statistics at the
``iter.begin`` / ``iter.end`` markers the workloads emit.

An optional telemetry :class:`~repro.telemetry.collector.Collector` can
observe the run (interval counter sampling, phase/directive events,
prefetch lifecycle tracing).  The default is the shared null collector:
``collector.enabled`` is checked once per run and the disabled path
executes the uninstrumented hot loops.

Hot-loop structure (see docs/PERFORMANCE.md for the invariants):

* ``run`` picks one of several specialized loops once per run — with or
  without telemetry, with or without prefetcher hooks, and *fast* vs
  *straight*;
* the **fast** loops inline the L1-hit case: one set-dict probe plus the
  dict-LRU promotion, core bookkeeping, and a deferred hit counter — no
  ``CacheHierarchy`` call and no result-object traffic for the
  overwhelming majority of references in cache-friendly workloads.  L1
  hit/access counters accumulate in loop-local ints and are flushed into
  ``SimStats`` at directives, sample points, and run end, so every
  mid-run observer (phase accounting, the telemetry sampler) still sees
  exact values;
* the **straight** loops are the pre-fast-path code shape (everything
  through ``CacheHierarchy.load``/``store``).  They are kept both as the
  fallback for configurations the fast path cannot serve (a D-TLB, a
  non-LRU L1 replacement policy) and as the golden reference: selecting
  the ``straight`` backend (``--engine straight`` / ``RNR_ENGINE`` /
  the legacy ``RNR_STRAIGHT_ENGINE=1`` alias) forces them, which the
  parity suite uses to prove the other backends produce bit-identical
  statistics;
* the **vector** backend (:mod:`repro.sim.vector`, ``--engine vector``)
  consumes hit runs in batched numpy epochs and spills everything else
  to the scalar machinery.  It needs numpy (the ``fast`` packaging
  extra) — without it a vector run warns once per process and degrades
  to the fast scalar loops — and serves telemetry-free runs whose
  prefetcher either keeps the base ``on_access`` hook or narrows it
  with an ``access_hook_filter`` (hook-spill epochs: rnr, imp, and
  their composites vectorize too); anything else silently falls back
  to the scalar loops with identical statistics.

Backend selection is shared with the CLI and the multicore engine
through :func:`repro.sim.backend.resolve_engine_backend`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from repro.cache.cache import Cache
from repro.cache.hierarchy import CacheHierarchy, L2Event
from repro.config import LINE_SIZE, SystemConfig
from repro.cpu.core import Core
from repro.mem.controller import MemoryController
from repro.prefetchers.base import NullPrefetcher, Prefetcher
from repro.sim import vector as vector_backend
from repro.sim.backend import (
    ENGINE_ENV,
    STRAIGHT_ENGINE_ENV,
    resolve_engine_backend,
)
from repro.sim.os_model import apply_switch
from repro.stats import PhaseStats, SimStats
from repro.telemetry.collector import NULL_COLLECTOR, Collector
from repro.trace.record import KIND_DIRECTIVE, KIND_LOAD
from repro.trace.trace import Trace

__all__ = [
    "ENGINE_ENV",
    "STRAIGHT_ENGINE_ENV",
    "SimulationEngine",
    "resolve_engine_backend",
]


class SimulationEngine:
    """Runs one trace on one core."""

    def __init__(
        self,
        config: SystemConfig,
        prefetcher: Optional[Prefetcher] = None,
        llc: Optional[Cache] = None,
        controller: Optional[MemoryController] = None,
        prefetch_fill_level: str = "l2",
        collector: Optional[Collector] = None,
        engine: Optional[str] = None,
    ):
        # Backend choice: explicit argument wins; None defers to the
        # RNR_ENGINE / RNR_STRAIGHT_ENGINE environment at run() time.
        # Validate eagerly so a typo fails at construction, not mid-sweep.
        self._engine_choice = (
            resolve_engine_backend(engine) if engine is not None else None
        )
        self.config = config
        self.stats = SimStats()
        self.controller = (
            controller
            if controller is not None
            else MemoryController(config.memory, config.core)
        )
        self.hierarchy = CacheHierarchy(
            config,
            self.controller,
            self.stats,
            llc=llc,
            prefetch_fill_level=prefetch_fill_level,
        )
        self.core = Core(config.core)
        self.prefetcher = prefetcher if prefetcher is not None else NullPrefetcher()
        self.prefetcher.attach(self.hierarchy, self.stats)
        self.collector = collector if collector is not None else NULL_COLLECTOR
        if self.collector.enabled:
            self._wire_collector()
        self._phase_stack: list = []

    def _wire_collector(self) -> None:
        """Point the hierarchy/MSHR/prefetcher-side hooks at the collector.

        Only runs for enabled collectors, so a disabled run leaves every
        ``tracer`` / ``on_stall`` / ``telemetry`` attribute None and pays
        nothing on the hot paths.
        """
        tracer = self.collector.tracer
        if tracer is not None:
            hierarchy = self.hierarchy
            hierarchy.tracer = tracer
            for level, cache in (
                ("l1d", hierarchy.l1),
                ("l2", hierarchy.l2),
                ("llc", hierarchy.llc),
            ):
                cache.mshr.on_stall = tracer.mshr_stall_hook(level)
        self.prefetcher.attach_telemetry(self.collector)

    # ------------------------------------------------------------------
    def _begin_phase(self, name: str) -> None:
        traffic = self.stats.traffic
        if self.collector.enabled:
            self.collector.on_phase_begin(name, self.core.cycle)
        self._phase_stack.append(
            (
                name,
                self.core.instructions,
                self.core.cycle,
                self.stats.l2.demand_misses,
                traffic.demand_lines,
                traffic.prefetch_lines,
                traffic.metadata_read_lines + traffic.metadata_write_lines,
            )
        )

    def _end_phase(self, name: str) -> None:
        if not self._phase_stack:
            raise ValueError(f"iter.end({name!r}) without matching iter.begin")
        start_name, instrs, cycles, misses, demand, prefetch, metadata = (
            self._phase_stack.pop()
        )
        if start_name != name:
            raise ValueError(f"phase mismatch: began {start_name!r}, ended {name!r}")
        traffic = self.stats.traffic
        phase = PhaseStats(
            name=name,
            instructions=self.core.instructions - instrs,
            cycles=self.core.cycle - cycles,
            l2_demand_misses=self.stats.l2.demand_misses - misses,
            demand_lines=traffic.demand_lines - demand,
            prefetch_lines=traffic.prefetch_lines - prefetch,
            metadata_lines=traffic.metadata_read_lines
            + traffic.metadata_write_lines
            - metadata,
        )
        self.stats.phases.append(phase)
        if self.collector.enabled:
            self.collector.on_phase_end(name, self.core.cycle, phase)

    def _handle_directive(self, op: str, args: tuple, cycle: int) -> None:
        if op == "iter.begin":
            self._begin_phase(f"iter{args[0]}")
        elif op == "iter.end":
            self._end_phase(f"iter{args[0]}")
        elif op == "os.switch":
            away_cycles, pollution = args
            self.core.cycle = apply_switch(
                self.hierarchy, self.core.cycle, away_cycles, pollution
            )
        if self.collector.enabled:
            self.collector.on_directive(op, args, cycle)
        self.prefetcher.on_directive(op, args, cycle)

    # ------------------------------------------------------------------
    def run(self, trace: Trace) -> SimStats:
        """Simulate the full trace; returns the accumulated statistics.

        The loops stream the trace's packed columns (kind, addr, pc, gap)
        and hoist every per-entry bound method into a local, so the
        steady-state cost per reference is the cache model itself rather
        than attribute lookups and record-object construction.  The
        columns may equally be ``memoryview`` windows into an mmap'd
        binary trace file (:class:`repro.trace.binfmt.MappedTrace`) — the
        loops stream those straight from the OS page cache.  A str/Path
        argument is loaded from disk (either trace format, sniffed).
        """
        if not isinstance(trace, Trace):
            if isinstance(trace, (str, Path)):
                from repro.trace.binfmt import load_any

                trace = load_any(trace)
            else:
                trace = Trace(trace)

        collector = self.collector
        prefetcher = self.prefetcher
        hierarchy = self.hierarchy
        ptype = type(prefetcher)
        slim = (
            ptype.on_access is Prefetcher.on_access
            and ptype.on_l2_event is Prefetcher.on_l2_event
        )
        backend = resolve_engine_backend(self._engine_choice)
        _, _, l1_dict_lru = hierarchy.l1.demand_probe_state()
        fast = (
            l1_dict_lru
            and hierarchy.dtlb is None
            and backend != "straight"
        )
        vector = False
        if backend == "vector":
            if not vector_backend.HAVE_NUMPY:
                # Once per process, not per run: a sweep shares one
                # interpreter across hundreds of cells.
                vector_backend.warn_numpy_fallback()
            else:
                # Telemetry, an on_access hook with no access_hook_filter
                # to narrow it, or a config outside the stall-safety
                # inequality falls back to the scalar loops (same
                # statistics, no vector speedup).
                vector = (
                    fast
                    and not collector.enabled
                    and vector_backend.vector_supported(self, slim)
                )

        if collector.enabled:
            collector.on_run_begin(len(trace), self.stats, prefetcher.name)
            if fast:
                self._run_telemetry_fast(trace)
            else:
                self._run_telemetry(trace)
        elif vector:
            vector_backend.run_vector(self, trace)
        elif fast:
            if slim:
                self._run_slim_fast(trace)
            else:
                self._run_hooks_fast(trace)
        elif slim:
            self._run_slim(trace)
        else:
            self._run_hooks(trace)

        final_cycle = self.core.finish()
        prefetcher.finalize(final_cycle)
        hierarchy.drain(final_cycle)
        self.stats.instructions = self.core.instructions
        self.stats.cycles = final_cycle
        if collector.enabled:
            collector.on_run_end(self.stats, final_cycle)
        return self.stats

    # ------------------------------------------------------------------
    # Fast loops: inlined L1-hit handling + deferred hit counters
    # ------------------------------------------------------------------
    def _run_slim_fast(self, trace: Trace) -> None:
        """No telemetry, base-class prefetcher hooks: the leanest loop.

        An L1 hit costs one dict probe, the dict-LRU promotion, and core
        bookkeeping; only misses enter the hierarchy (allocation-free via
        the reusable result object).
        """
        core = self.core
        issue_after = core.issue_after
        advance = core.advance
        retire_load = core.retire_load
        retire_store = core.retire_store
        hierarchy = self.hierarchy
        demand_miss = hierarchy._demand_miss
        sets, num_sets, _ = hierarchy.l1.demand_probe_state()
        l1_latency = hierarchy.l1.config.latency
        l1_stats = self.stats.l1d
        handle_directive = self._handle_directive
        directive_at = trace.directive_at
        kind_directive = KIND_DIRECTIVE
        kind_load = KIND_LOAD
        line_size = LINE_SIZE
        l1_hits = 0
        l1_misses = 0

        for kind, addr, pc, gap in trace.iter_packed():
            if kind == kind_directive:
                if gap:
                    advance(gap)
                if l1_hits or l1_misses:
                    l1_stats.demand_accesses += l1_hits + l1_misses
                    l1_stats.demand_hits += l1_hits
                    l1_stats.demand_misses += l1_misses
                    l1_hits = 0
                    l1_misses = 0
                op, args = directive_at(addr)
                handle_directive(op, args, core.cycle)
                continue
            issue = issue_after(gap)
            line_addr = addr // line_size
            lines = sets[line_addr % num_sets]
            tag = line_addr // num_sets
            line = lines.get(tag)
            if line is not None:
                del lines[tag]
                lines[tag] = line
                l1_hits += 1
                at_l1 = issue + l1_latency
                arrive = line.arrive
                completion = arrive if arrive > at_l1 else at_l1
                if kind == kind_load:
                    retire_load(completion)
                else:
                    line.dirty = True
                    retire_store(completion)
            else:
                l1_misses += 1
                if kind == kind_load:
                    retire_load(
                        demand_miss(
                            line_addr, issue, issue + l1_latency, False
                        ).completion
                    )
                else:
                    retire_store(
                        demand_miss(
                            line_addr, issue, issue + l1_latency, True
                        ).completion
                    )

        if l1_hits or l1_misses:
            l1_stats.demand_accesses += l1_hits + l1_misses
            l1_stats.demand_hits += l1_hits
            l1_stats.demand_misses += l1_misses

    def _run_hooks_fast(self, trace: Trace) -> None:
        """No telemetry, real prefetcher hooks, inlined L1-hit handling.

        ``on_access`` still fires for every reference (prefetchers train
        on the full access stream); ``on_l2_event`` only fires when the
        access actually reached the L2, which an L1 hit never does.
        """
        core = self.core
        issue_after = core.issue_after
        advance = core.advance
        retire_load = core.retire_load
        retire_store = core.retire_store
        hierarchy = self.hierarchy
        demand_miss = hierarchy._demand_miss
        sets, num_sets, _ = hierarchy.l1.demand_probe_state()
        l1_latency = hierarchy.l1.config.latency
        l1_stats = self.stats.l1d
        prefetcher = self.prefetcher
        on_access = prefetcher.on_access
        on_l2_event = prefetcher.on_l2_event
        none_event = L2Event.NONE
        handle_directive = self._handle_directive
        directive_at = trace.directive_at
        kind_directive = KIND_DIRECTIVE
        kind_load = KIND_LOAD
        line_size = LINE_SIZE
        l1_hits = 0
        l1_misses = 0

        for kind, addr, pc, gap in trace.iter_packed():
            if kind == kind_directive:
                if gap:
                    advance(gap)
                if l1_hits or l1_misses:
                    l1_stats.demand_accesses += l1_hits + l1_misses
                    l1_stats.demand_hits += l1_hits
                    l1_stats.demand_misses += l1_misses
                    l1_hits = 0
                    l1_misses = 0
                op, args = directive_at(addr)
                handle_directive(op, args, core.cycle)
                continue
            issue = issue_after(gap)
            is_store = kind != kind_load
            flagged = on_access(addr, pc, issue, is_store)
            line_addr = addr // line_size
            lines = sets[line_addr % num_sets]
            tag = line_addr // num_sets
            line = lines.get(tag)
            if line is not None:
                del lines[tag]
                lines[tag] = line
                l1_hits += 1
                at_l1 = issue + l1_latency
                arrive = line.arrive
                completion = arrive if arrive > at_l1 else at_l1
                if is_store:
                    line.dirty = True
                    retire_store(completion)
                else:
                    retire_load(completion)
                continue
            l1_misses += 1
            result = demand_miss(line_addr, issue, issue + l1_latency, is_store)
            completion = result.completion
            if is_store:
                retire_store(completion)
            else:
                retire_load(completion)
            if result.l2_event is not none_event:
                on_l2_event(
                    result.line_addr, pc, issue, result.l2_event, flagged, completion
                )

        if l1_hits or l1_misses:
            l1_stats.demand_accesses += l1_hits + l1_misses
            l1_stats.demand_hits += l1_hits
            l1_stats.demand_misses += l1_misses

    def _run_telemetry_fast(self, trace: Trace) -> None:
        """Telemetry loop with the inlined L1-hit fast path.

        Same dispatch as :meth:`_run_hooks_fast` plus one cycle
        comparison per entry for the interval sampler.  The deferred L1
        counters are flushed *before* every sample so the sampler's
        column sums still reconcile exactly with the final ``SimStats``.
        """
        collector = self.collector
        core = self.core
        issue_after = core.issue_after
        advance = core.advance
        retire_load = core.retire_load
        retire_store = core.retire_store
        hierarchy = self.hierarchy
        demand_miss = hierarchy._demand_miss
        sets, num_sets, _ = hierarchy.l1.demand_probe_state()
        l1_latency = hierarchy.l1.config.latency
        stats = self.stats
        l1_stats = stats.l1d
        prefetcher = self.prefetcher
        on_access = prefetcher.on_access
        on_l2_event = prefetcher.on_l2_event
        maybe_sample = collector.maybe_sample
        none_event = L2Event.NONE
        handle_directive = self._handle_directive
        directive_at = trace.directive_at
        kind_directive = KIND_DIRECTIVE
        kind_load = KIND_LOAD
        line_size = LINE_SIZE
        l1_hits = 0
        l1_misses = 0

        for kind, addr, pc, gap in trace.iter_packed():
            if kind == kind_directive:
                if gap:
                    advance(gap)
                if l1_hits or l1_misses:
                    l1_stats.demand_accesses += l1_hits + l1_misses
                    l1_stats.demand_hits += l1_hits
                    l1_stats.demand_misses += l1_misses
                    l1_hits = 0
                    l1_misses = 0
                op, args = directive_at(addr)
                handle_directive(op, args, core.cycle)
                continue
            issue = issue_after(gap)
            is_store = kind != kind_load
            flagged = on_access(addr, pc, issue, is_store)
            line_addr = addr // line_size
            lines = sets[line_addr % num_sets]
            tag = line_addr // num_sets
            line = lines.get(tag)
            if line is not None:
                del lines[tag]
                lines[tag] = line
                l1_hits += 1
                at_l1 = issue + l1_latency
                arrive = line.arrive
                completion = arrive if arrive > at_l1 else at_l1
                if is_store:
                    line.dirty = True
                    retire_store(completion)
                else:
                    retire_load(completion)
            else:
                l1_misses += 1
                result = demand_miss(line_addr, issue, issue + l1_latency, is_store)
                completion = result.completion
                if is_store:
                    retire_store(completion)
                else:
                    retire_load(completion)
                if result.l2_event is not none_event:
                    on_l2_event(
                        result.line_addr,
                        pc,
                        issue,
                        result.l2_event,
                        flagged,
                        completion,
                    )
            if core.cycle >= collector.next_sample:
                if l1_hits or l1_misses:
                    l1_stats.demand_accesses += l1_hits + l1_misses
                    l1_stats.demand_hits += l1_hits
                    l1_stats.demand_misses += l1_misses
                    l1_hits = 0
                    l1_misses = 0
                stats.instructions = core.instructions
                maybe_sample(core.cycle)

        if l1_hits or l1_misses:
            l1_stats.demand_accesses += l1_hits + l1_misses
            l1_stats.demand_hits += l1_hits
            l1_stats.demand_misses += l1_misses

    # ------------------------------------------------------------------
    # Straight loops: the pre-fast-path code shape (golden reference)
    # ------------------------------------------------------------------
    def _run_telemetry(self, trace: Trace) -> None:
        """Telemetry loop routing every access through load()/store()."""
        collector = self.collector
        core = self.core
        prefetcher = self.prefetcher
        none_event = L2Event.NONE
        advance = core.advance
        issue_cycle = core.issue_cycle
        retire_load = core.retire_load
        retire_store = core.retire_store
        load = self.hierarchy.load
        store = self.hierarchy.store
        handle_directive = self._handle_directive
        directive_at = trace.directive_at
        kind_directive = KIND_DIRECTIVE
        kind_load = KIND_LOAD
        on_access = prefetcher.on_access
        on_l2_event = prefetcher.on_l2_event
        maybe_sample = collector.maybe_sample
        stats = self.stats
        for kind, addr, pc, gap in trace.iter_packed():
            if gap:
                advance(gap)
            if kind == kind_directive:
                op, args = directive_at(addr)
                handle_directive(op, args, core.cycle)
                continue
            issue = issue_cycle()
            if kind == kind_load:
                flagged = on_access(addr, pc, issue, False)
                result = load(addr, issue)
                retire_load(result.completion)
            else:
                flagged = on_access(addr, pc, issue, True)
                result = store(addr, issue)
                retire_store(result.completion)
            if result.l2_event is not none_event:
                on_l2_event(
                    result.line_addr, pc, issue, result.l2_event, flagged, result.completion
                )
            if core.cycle >= collector.next_sample:
                stats.instructions = core.instructions
                maybe_sample(core.cycle)

    def _run_slim(self, trace: Trace) -> None:
        """Straight loop for prefetchers whose per-access hooks are the
        base no-ops (baseline / ideal runs): both hook dispatches and the
        L2-event plumbing drop out."""
        core = self.core
        advance = core.advance
        issue_cycle = core.issue_cycle
        retire_load = core.retire_load
        retire_store = core.retire_store
        load = self.hierarchy.load
        store = self.hierarchy.store
        handle_directive = self._handle_directive
        directive_at = trace.directive_at
        kind_directive = KIND_DIRECTIVE
        kind_load = KIND_LOAD
        for kind, addr, pc, gap in trace.iter_packed():
            if gap:
                advance(gap)
            if kind == kind_directive:
                op, args = directive_at(addr)
                handle_directive(op, args, core.cycle)
                continue
            issue = issue_cycle()
            if kind == kind_load:
                retire_load(load(addr, issue).completion)
            else:
                retire_store(store(addr, issue).completion)

    def _run_hooks(self, trace: Trace) -> None:
        """Straight loop with prefetcher hook dispatch per access."""
        core = self.core
        prefetcher = self.prefetcher
        none_event = L2Event.NONE
        advance = core.advance
        issue_cycle = core.issue_cycle
        retire_load = core.retire_load
        retire_store = core.retire_store
        load = self.hierarchy.load
        store = self.hierarchy.store
        handle_directive = self._handle_directive
        directive_at = trace.directive_at
        kind_directive = KIND_DIRECTIVE
        kind_load = KIND_LOAD
        on_access = prefetcher.on_access
        on_l2_event = prefetcher.on_l2_event
        for kind, addr, pc, gap in trace.iter_packed():
            if gap:
                advance(gap)
            if kind == kind_directive:
                op, args = directive_at(addr)
                handle_directive(op, args, core.cycle)
                continue
            issue = issue_cycle()
            if kind == kind_load:
                flagged = on_access(addr, pc, issue, False)
                result = load(addr, issue)
                retire_load(result.completion)
            else:
                flagged = on_access(addr, pc, issue, True)
                result = store(addr, issue)
                retire_store(result.completion)
            if result.l2_event is not none_event:
                on_l2_event(
                    result.line_addr, pc, issue, result.l2_event, flagged, result.completion
                )
