"""Single-core trace-driven simulation engine.

Couples one :class:`~repro.cpu.core.Core` to a
:class:`~repro.cache.hierarchy.CacheHierarchy` and an attached prefetcher,
interprets embedded RnR directives, and tracks per-phase statistics at the
``iter.begin`` / ``iter.end`` markers the workloads emit.

An optional telemetry :class:`~repro.telemetry.collector.Collector` can
observe the run (interval counter sampling, phase/directive events,
prefetch lifecycle tracing).  The default is the shared null collector:
``collector.enabled`` is checked once per run and the disabled path
executes the original uninstrumented hot loops.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from repro.cache.cache import Cache
from repro.cache.hierarchy import CacheHierarchy, L2Event
from repro.config import SystemConfig
from repro.cpu.core import Core
from repro.mem.controller import MemoryController
from repro.prefetchers.base import NullPrefetcher, Prefetcher
from repro.sim.os_model import apply_switch
from repro.stats import PhaseStats, SimStats
from repro.telemetry.collector import NULL_COLLECTOR, Collector
from repro.trace.record import KIND_DIRECTIVE, KIND_LOAD
from repro.trace.trace import Trace


class SimulationEngine:
    """Runs one trace on one core."""

    def __init__(
        self,
        config: SystemConfig,
        prefetcher: Optional[Prefetcher] = None,
        llc: Optional[Cache] = None,
        controller: Optional[MemoryController] = None,
        prefetch_fill_level: str = "l2",
        collector: Optional[Collector] = None,
    ):
        self.config = config
        self.stats = SimStats()
        self.controller = (
            controller
            if controller is not None
            else MemoryController(config.memory, config.core)
        )
        self.hierarchy = CacheHierarchy(
            config,
            self.controller,
            self.stats,
            llc=llc,
            prefetch_fill_level=prefetch_fill_level,
        )
        self.core = Core(config.core)
        self.prefetcher = prefetcher if prefetcher is not None else NullPrefetcher()
        self.prefetcher.attach(self.hierarchy, self.stats)
        self.collector = collector if collector is not None else NULL_COLLECTOR
        if self.collector.enabled:
            self._wire_collector()
        self._phase_stack: list = []

    def _wire_collector(self) -> None:
        """Point the hierarchy/MSHR/prefetcher-side hooks at the collector.

        Only runs for enabled collectors, so a disabled run leaves every
        ``tracer`` / ``on_stall`` / ``telemetry`` attribute None and pays
        nothing on the hot paths.
        """
        tracer = self.collector.tracer
        if tracer is not None:
            hierarchy = self.hierarchy
            hierarchy.tracer = tracer
            for level, cache in (
                ("l1d", hierarchy.l1),
                ("l2", hierarchy.l2),
                ("llc", hierarchy.llc),
            ):
                cache.mshr.on_stall = tracer.mshr_stall_hook(level)
        self.prefetcher.attach_telemetry(self.collector)

    # ------------------------------------------------------------------
    def _begin_phase(self, name: str) -> None:
        traffic = self.stats.traffic
        if self.collector.enabled:
            self.collector.on_phase_begin(name, self.core.cycle)
        self._phase_stack.append(
            (
                name,
                self.core.instructions,
                self.core.cycle,
                self.stats.l2.demand_misses,
                traffic.demand_lines,
                traffic.prefetch_lines,
                traffic.metadata_read_lines + traffic.metadata_write_lines,
            )
        )

    def _end_phase(self, name: str) -> None:
        if not self._phase_stack:
            raise ValueError(f"iter.end({name!r}) without matching iter.begin")
        start_name, instrs, cycles, misses, demand, prefetch, metadata = (
            self._phase_stack.pop()
        )
        if start_name != name:
            raise ValueError(f"phase mismatch: began {start_name!r}, ended {name!r}")
        traffic = self.stats.traffic
        phase = PhaseStats(
            name=name,
            instructions=self.core.instructions - instrs,
            cycles=self.core.cycle - cycles,
            l2_demand_misses=self.stats.l2.demand_misses - misses,
            demand_lines=traffic.demand_lines - demand,
            prefetch_lines=traffic.prefetch_lines - prefetch,
            metadata_lines=traffic.metadata_read_lines
            + traffic.metadata_write_lines
            - metadata,
        )
        self.stats.phases.append(phase)
        if self.collector.enabled:
            self.collector.on_phase_end(name, self.core.cycle, phase)

    def _handle_directive(self, op: str, args: tuple, cycle: int) -> None:
        if op == "iter.begin":
            self._begin_phase(f"iter{args[0]}")
        elif op == "iter.end":
            self._end_phase(f"iter{args[0]}")
        elif op == "os.switch":
            away_cycles, pollution = args
            self.core.cycle = apply_switch(
                self.hierarchy, self.core.cycle, away_cycles, pollution
            )
        if self.collector.enabled:
            self.collector.on_directive(op, args, cycle)
        self.prefetcher.on_directive(op, args, cycle)

    # ------------------------------------------------------------------
    def run(self, trace: Trace) -> SimStats:
        """Simulate the full trace; returns the accumulated statistics.

        The loop streams the trace's packed columns (kind, addr, pc, gap)
        and hoists every per-entry bound method into a local, so the
        steady-state cost per reference is the cache model itself rather
        than attribute lookups and record-object construction.  The
        columns may equally be ``memoryview`` windows into an mmap'd
        binary trace file (:class:`repro.trace.binfmt.MappedTrace`) — the
        loop streams those straight from the OS page cache.  A str/Path
        argument is loaded from disk (either trace format, sniffed).
        """
        if not isinstance(trace, Trace):
            if isinstance(trace, (str, Path)):
                from repro.trace.binfmt import load_any

                trace = load_any(trace)
            else:
                trace = Trace(trace)
        core = self.core
        prefetcher = self.prefetcher
        none_event = L2Event.NONE
        advance = core.advance
        issue_cycle = core.issue_cycle
        retire_load = core.retire_load
        retire_store = core.retire_store
        load = self.hierarchy.load
        store = self.hierarchy.store
        handle_directive = self._handle_directive
        directive_at = trace.directive_at
        kind_directive = KIND_DIRECTIVE
        kind_load = KIND_LOAD

        collector = self.collector
        ptype = type(prefetcher)
        if collector.enabled:
            # Telemetry loop: same dispatch as the general loop plus one
            # cycle comparison per entry for the interval sampler.  Only
            # enabled collectors ever take this branch, so the two loops
            # below stay exactly as fast as before telemetry existed.
            collector.on_run_begin(len(trace), self.stats, prefetcher.name)
            on_access = prefetcher.on_access
            on_l2_event = prefetcher.on_l2_event
            maybe_sample = collector.maybe_sample
            stats = self.stats
            for kind, addr, pc, gap in trace.iter_packed():
                if gap:
                    advance(gap)
                if kind == kind_directive:
                    op, args = directive_at(addr)
                    handle_directive(op, args, core.cycle)
                    continue
                issue = issue_cycle()
                if kind == kind_load:
                    flagged = on_access(addr, pc, issue, False)
                    result = load(addr, issue)
                    retire_load(result.completion)
                else:
                    flagged = on_access(addr, pc, issue, True)
                    result = store(addr, issue)
                    retire_store(result.completion)
                if result.l2_event is not none_event:
                    on_l2_event(
                        result.line_addr, pc, issue, result.l2_event, flagged, result.completion
                    )
                if core.cycle >= collector.next_sample:
                    stats.instructions = core.instructions
                    maybe_sample(core.cycle)
        elif (
            ptype.on_access is Prefetcher.on_access
            and ptype.on_l2_event is Prefetcher.on_l2_event
        ):
            # Slim loop for prefetchers whose per-access hooks are the
            # base no-ops (baseline / ideal runs): both hook dispatches
            # and the L2-event plumbing drop out of the hot path.
            for kind, addr, pc, gap in trace.iter_packed():
                if gap:
                    advance(gap)
                if kind == kind_directive:
                    op, args = directive_at(addr)
                    handle_directive(op, args, core.cycle)
                    continue
                issue = issue_cycle()
                if kind == kind_load:
                    retire_load(load(addr, issue).completion)
                else:
                    retire_store(store(addr, issue).completion)
        else:
            on_access = prefetcher.on_access
            on_l2_event = prefetcher.on_l2_event
            for kind, addr, pc, gap in trace.iter_packed():
                if gap:
                    advance(gap)
                if kind == kind_directive:
                    op, args = directive_at(addr)
                    handle_directive(op, args, core.cycle)
                    continue
                issue = issue_cycle()
                if kind == kind_load:
                    flagged = on_access(addr, pc, issue, False)
                    result = load(addr, issue)
                    retire_load(result.completion)
                else:
                    flagged = on_access(addr, pc, issue, True)
                    result = store(addr, issue)
                    retire_store(result.completion)
                if result.l2_event is not none_event:
                    on_l2_event(
                        result.line_addr, pc, issue, result.l2_event, flagged, result.completion
                    )

        final_cycle = core.finish()
        prefetcher.finalize(final_cycle)
        self.hierarchy.drain(final_cycle)
        self.stats.instructions = core.instructions
        self.stats.cycles = final_cycle
        if collector.enabled:
            collector.on_run_end(self.stats, final_cycle)
        return self.stats
