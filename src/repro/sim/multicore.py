"""Lockstep multicore simulation (paper Section V-E / VI).

The paper runs 4-core SPMD workloads: each worker owns a graph partition,
has private L1/L2 and its own per-core RnR state, and shares the LLC and
the memory controller.  This engine interleaves the per-core traces in
global time order: at every step the core with the smallest local clock
consumes its next trace entry, so shared-resource contention (LLC
capacity, DRAM banks/bus, write drains) is modelled in rough cycle order.

Scheduling is a ``heapq`` k-way merge over ``(clock, core_idx)`` keys.
Popping the minimum hands the winning core a *run*: it keeps consuming
trace entries until its clock passes the runner-up's ``(clock, idx)``
key, so the per-entry cost is one tuple comparison instead of a heap
operation (let alone the O(cores) ``min()`` scan this replaces).  The
``(clock, idx)`` ordering reproduces the previous scheduler's tie-break
(lowest core index first) exactly, and a core that exhausts its trace is
finished/drained immediately — in the same shared-controller order as
the one-entry-at-a-time scheduler — so results are bit-identical.

Per-core traces stream through ``iter_packed()`` and share the engine's
inlined L1-hit fast path (see :mod:`repro.sim.engine`); a str/Path entry
is loaded from disk, so store-served binary traces can be passed by path
without materialising record objects.

Under ``--engine vector`` (or ``RNR_ENGINE=vector``), each eligible
core's run is consumed through the columnar backend instead: the core
owns an incremental :class:`repro.sim.vector._VectorRun` (per-core
``L1Mirror`` and trace columns) and every merge turn calls its
``run_until`` with the runner-up's ``(clock, idx)`` key — batched hit
retirement inside the turn, with the turn boundary cut at exactly the
entry where the scalar merge would yield, so shared-LLC/MSHR/DRAM
interactions keep the same global order and the statistics stay
bit-identical.  Ineligible cores (or a fleet without numpy, which warns
once per process) keep the scalar turn body below; mixed fleets are
fine.
"""

from __future__ import annotations

import heapq
from pathlib import Path
from typing import List, Optional, Sequence

from repro.cache.cache import Cache
from repro.cache.hierarchy import L2Event
from repro.config import LINE_SIZE, SystemConfig
from repro.mem.controller import MemoryController
from repro.prefetchers.base import NullPrefetcher, Prefetcher
from repro.sim import vector as vector_backend
from repro.sim.engine import SimulationEngine, resolve_engine_backend
from repro.stats import SimStats
from repro.trace.record import KIND_DIRECTIVE, KIND_LOAD
from repro.trace.trace import Trace


class MulticoreEngine:
    """Runs one trace per core against a shared LLC + memory controller."""

    def __init__(
        self,
        config: SystemConfig,
        prefetchers: Optional[Sequence[Optional[Prefetcher]]] = None,
        engine: Optional[str] = None,
    ):
        # Backend choice mirrors SimulationEngine: explicit argument wins,
        # None defers to RNR_ENGINE / RNR_STRAIGHT_ENGINE at run() time;
        # validate eagerly so a typo fails at construction.
        self._engine_choice = (
            resolve_engine_backend(engine) if engine is not None else None
        )
        self.config = config
        self.controller = MemoryController(config.memory, config.core)
        self.shared_llc = Cache(config.llc)
        cores = config.cores
        if prefetchers is None:
            prefetchers = [None] * cores
        if len(prefetchers) != cores:
            raise ValueError(
                f"need {cores} prefetchers (or None), got {len(prefetchers)}"
            )
        self.engines: List[SimulationEngine] = [
            SimulationEngine(
                config,
                prefetcher=prefetchers[i] if prefetchers[i] is not None else NullPrefetcher(),
                llc=self.shared_llc,
                controller=self.controller,
            )
            for i in range(cores)
        ]

    # ------------------------------------------------------------------
    def run(self, traces: Sequence) -> List[SimStats]:
        """Interleave per-core traces by local core time.

        Each element of ``traces`` may be a :class:`Trace` (including a
        mmap-backed :class:`~repro.trace.binfmt.MappedTrace`), a str/Path
        to a trace file on disk, or an iterable of records.  A core whose
        trace is empty never runs and keeps zeroed statistics.
        """
        engines = self.engines
        if len(traces) != len(engines):
            raise ValueError(f"need {len(engines)} traces, got {len(traces)}")
        coerced: List[Trace] = []
        for trace in traces:
            if not isinstance(trace, Trace):
                if isinstance(trace, (str, Path)):
                    from repro.trace.binfmt import load_any

                    trace = load_any(trace)
                else:
                    trace = Trace(trace)
            coerced.append(trace)

        none_event = L2Event.NONE
        kind_directive = KIND_DIRECTIVE
        kind_load = KIND_LOAD
        line_size = LINE_SIZE
        backend = resolve_engine_backend(self._engine_choice)
        straight = backend == "straight"
        want_vector = backend == "vector"
        if want_vector and not vector_backend.HAVE_NUMPY:
            vector_backend.warn_numpy_fallback()
            want_vector = False

        # Per-core scheduler state, indexed by core number.  ``state``
        # holds every per-entry binding hoisted once per core, so run
        # consumption only rebinds locals when the scheduler actually
        # switches cores.
        iters: List = []
        entries: List = []
        hits: List[int] = []
        misses: List[int] = []
        state: List = []
        runners: List = []
        heap: List = []
        for idx, trace in enumerate(coerced):
            if len(trace) == 0:
                # A core with no trace never runs, never finishes, and
                # keeps zeroed stats (matches the previous scheduler).
                iters.append(None)
                entries.append(None)
                hits.append(0)
                misses.append(0)
                state.append(None)
                runners.append(None)
                continue
            engine = engines[idx]
            core = engine.core
            hierarchy = engine.hierarchy
            prefetcher = engine.prefetcher
            ptype = type(prefetcher)
            # Slim cores (base-class no-op hooks, e.g. NullPrefetcher)
            # skip hook dispatch entirely; None marks them in the state.
            slim = (
                ptype.on_access is Prefetcher.on_access
                and ptype.on_l2_event is Prefetcher.on_l2_event
            )
            sets, num_sets, dict_lru = hierarchy.l1.demand_probe_state()
            fast = dict_lru and hierarchy.dtlb is None and not straight
            if want_vector and fast:
                runner = vector_backend.core_runner(engine, trace, slim)
                if runner is not None:
                    # This core's turns go through the columnar backend;
                    # none of the scalar per-entry state is needed.
                    iters.append(None)
                    entries.append(None)
                    hits.append(0)
                    misses.append(0)
                    state.append(None)
                    runners.append(runner)
                    heap.append((0, idx))
                    continue
            runners.append(None)
            it = trace.iter_packed()
            it_next = it.__next__
            state.append(
                (
                    core,
                    engine,
                    core.issue_after,
                    core.advance,
                    core.retire_load,
                    core.retire_store,
                    engine._handle_directive,
                    trace.directive_at,
                    hierarchy._demand_miss,
                    hierarchy.load,
                    hierarchy.store,
                    None if slim else prefetcher.on_access,
                    None if slim else prefetcher.on_l2_event,
                    sets,
                    num_sets,
                    hierarchy.l1.config.latency,
                    engine.stats.l1d,
                    fast,
                )
            )
            iters.append(it_next)
            entries.append(it_next())
            hits.append(0)
            misses.append(0)
            heap.append((0, idx))

        heapq.heapify(heap)
        heappush = heapq.heappush
        heappop = heapq.heappop

        while heap:
            _, idx = heappop(heap)
            runner = runners[idx]
            if runner is not None:
                # Columnar turn: consume up to the runner-up's key through
                # batched vector epochs (run_until processes the first
                # entry whose post-entry clock passes the limit, exactly
                # like the scalar turn below, so the global interleaving
                # is identical).
                engine = engines[idx]
                core = engine.core
                if heap:
                    limit_clock, limit_idx = heap[0]
                    exhausted = runner.run_until(limit_clock, idx > limit_idx)
                else:
                    exhausted = runner.run_until(None, False)
                if exhausted:
                    # run_until flushed the deferred L1 counters; finish
                    # and drain immediately, in shared-controller order.
                    final = core.finish()
                    engine.prefetcher.finalize(final)
                    engine.hierarchy.drain(final)
                    engine.stats.instructions = core.instructions
                    engine.stats.cycles = final
                    runners[idx] = None
                else:
                    heappush(heap, (core.cycle, idx))
                continue
            (
                core,
                engine,
                issue_after,
                advance,
                retire_load,
                retire_store,
                handle_directive,
                directive_at,
                demand_miss,
                load,
                store,
                on_access,
                on_l2_event,
                sets,
                num_sets,
                l1_latency,
                l1_stats,
                fast,
            ) = state[idx]
            it_next = iters[idx]
            entry = entries[idx]
            l1_hits = hits[idx]
            l1_misses = misses[idx]
            if heap:
                limit_clock, limit_idx = heap[0]
                bounded = True
            else:
                bounded = False
            while True:
                kind, addr, pc, gap = entry
                if kind == kind_directive:
                    if gap:
                        advance(gap)
                    if l1_hits or l1_misses:
                        l1_stats.demand_accesses += l1_hits + l1_misses
                        l1_stats.demand_hits += l1_hits
                        l1_stats.demand_misses += l1_misses
                        l1_hits = 0
                        l1_misses = 0
                    op, args = directive_at(addr)
                    handle_directive(op, args, core.cycle)
                elif fast:
                    issue = issue_after(gap)
                    is_store = kind != kind_load
                    if on_access is not None:
                        flagged = on_access(addr, pc, issue, is_store)
                    line_addr = addr // line_size
                    lines = sets[line_addr % num_sets]
                    tag = line_addr // num_sets
                    line = lines.get(tag)
                    if line is not None:
                        del lines[tag]
                        lines[tag] = line
                        l1_hits += 1
                        at_l1 = issue + l1_latency
                        arrive = line.arrive
                        completion = arrive if arrive > at_l1 else at_l1
                        if is_store:
                            line.dirty = True
                            retire_store(completion)
                        else:
                            retire_load(completion)
                    else:
                        l1_misses += 1
                        result = demand_miss(
                            line_addr, issue, issue + l1_latency, is_store
                        )
                        completion = result.completion
                        if is_store:
                            retire_store(completion)
                        else:
                            retire_load(completion)
                        if (
                            on_l2_event is not None
                            and result.l2_event is not none_event
                        ):
                            on_l2_event(
                                result.line_addr,
                                pc,
                                issue,
                                result.l2_event,
                                flagged,
                                completion,
                            )
                else:
                    issue = issue_after(gap)
                    is_store = kind != kind_load
                    flagged = (
                        on_access(addr, pc, issue, is_store)
                        if on_access is not None
                        else False
                    )
                    if is_store:
                        result = store(addr, issue)
                        retire_store(result.completion)
                    else:
                        result = load(addr, issue)
                        retire_load(result.completion)
                    if (
                        on_l2_event is not None
                        and result.l2_event is not none_event
                    ):
                        on_l2_event(
                            result.line_addr,
                            pc,
                            issue,
                            result.l2_event,
                            flagged,
                            result.completion,
                        )

                try:
                    entry = it_next()
                except StopIteration:
                    # Trace exhausted: finish immediately — the drain
                    # order against the shared controller is part of
                    # the simulated result.
                    if l1_hits or l1_misses:
                        l1_stats.demand_accesses += l1_hits + l1_misses
                        l1_stats.demand_hits += l1_hits
                        l1_stats.demand_misses += l1_misses
                    final = core.finish()
                    engine.prefetcher.finalize(final)
                    engine.hierarchy.drain(final)
                    engine.stats.instructions = core.instructions
                    engine.stats.cycles = final
                    state[idx] = None
                    iters[idx] = None
                    entries[idx] = None
                    break
                if bounded:
                    c = core.cycle
                    if c > limit_clock or (c == limit_clock and idx > limit_idx):
                        entries[idx] = entry
                        hits[idx] = l1_hits
                        misses[idx] = l1_misses
                        heappush(heap, (c, idx))
                        break

        return [eng.stats for eng in engines]

    def aggregate(self) -> SimStats:
        """Merged statistics across cores (cycles = slowest core)."""
        total = SimStats()
        for engine in self.engines:
            total.merge(engine.stats)
            total.phases.extend(engine.stats.phases)
        return total
