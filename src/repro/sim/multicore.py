"""Lockstep multicore simulation (paper Section V-E / VI).

The paper runs 4-core SPMD workloads: each worker owns a graph partition,
has private L1/L2 and its own per-core RnR state, and shares the LLC and
the memory controller.  This engine interleaves the per-core traces in
global time order: at every step the core with the smallest local clock
consumes its next trace entry, so shared-resource contention (LLC
capacity, DRAM banks/bus, write drains) is modelled in rough cycle order.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.cache.cache import Cache
from repro.cache.hierarchy import L2Event
from repro.config import SystemConfig
from repro.mem.controller import MemoryController
from repro.prefetchers.base import NullPrefetcher, Prefetcher
from repro.sim.engine import SimulationEngine
from repro.stats import SimStats
from repro.trace.record import KIND_DIRECTIVE, KIND_LOAD
from repro.trace.trace import Trace


class MulticoreEngine:
    """Runs one trace per core against a shared LLC + memory controller."""

    def __init__(
        self,
        config: SystemConfig,
        prefetchers: Optional[Sequence[Optional[Prefetcher]]] = None,
    ):
        self.config = config
        self.controller = MemoryController(config.memory, config.core)
        self.shared_llc = Cache(config.llc)
        cores = config.cores
        if prefetchers is None:
            prefetchers = [None] * cores
        if len(prefetchers) != cores:
            raise ValueError(
                f"need {cores} prefetchers (or None), got {len(prefetchers)}"
            )
        self.engines: List[SimulationEngine] = [
            SimulationEngine(
                config,
                prefetcher=prefetchers[i] if prefetchers[i] is not None else NullPrefetcher(),
                llc=self.shared_llc,
                controller=self.controller,
            )
            for i in range(cores)
        ]

    # ------------------------------------------------------------------
    def run(self, traces: Sequence[Trace]) -> List[SimStats]:
        """Interleave per-core traces by local core time."""
        if len(traces) != len(self.engines):
            raise ValueError(
                f"need {len(self.engines)} traces, got {len(traces)}"
            )
        iterators = [iter(trace) for trace in traces]
        pending = []
        for idx, iterator in enumerate(iterators):
            entry = next(iterator, None)
            if entry is not None:
                pending.append([0, idx, entry])

        none_event = L2Event.NONE
        while pending:
            # Pick the core with the smallest local clock.
            slot = min(pending, key=lambda item: item[0])
            _, core_idx, entry = slot
            engine = self.engines[core_idx]
            core = engine.core

            gap = entry.gap
            if gap:
                core.advance(gap)
            if entry.kind == KIND_DIRECTIVE:
                engine._handle_directive(entry.op, entry.args, core.cycle)
            else:
                issue = core.issue_cycle()
                is_store = entry.kind != KIND_LOAD
                flagged = engine.prefetcher.on_access(
                    entry.addr, entry.pc, issue, is_store
                )
                if is_store:
                    result = engine.hierarchy.store(entry.addr, issue)
                    core.retire_store(result.completion)
                else:
                    result = engine.hierarchy.load(entry.addr, issue)
                    core.retire_load(result.completion)
                if result.l2_event is not none_event:
                    engine.prefetcher.on_l2_event(
                        result.line_addr,
                        entry.pc,
                        issue,
                        result.l2_event,
                        flagged,
                        result.completion,
                    )

            nxt = next(iterators[core_idx], None)
            if nxt is None:
                pending.remove(slot)
                final = core.finish()
                engine.prefetcher.finalize(final)
                engine.hierarchy.drain(final)
                engine.stats.instructions = core.instructions
                engine.stats.cycles = final
            else:
                slot[0] = core.cycle
                slot[2] = nxt

        return [engine.stats for engine in self.engines]

    def aggregate(self) -> SimStats:
        """Merged statistics across cores (cycles = slowest core)."""
        total = SimStats()
        for engine in self.engines:
            total.merge(engine.stats)
            total.phases.extend(engine.stats.phases)
        return total
