"""Numpy-columnar execution backend (``--engine vector``).

The scalar engine loops (:mod:`repro.sim.engine`) pay an irreducible
per-entry interpreter cost even on a pure L1-hit stream.  This backend
removes it for the entries where the simulation is *laminar* — runs of
consecutive L1 hits whose timing is closed-form — and spills everything
else to the exact scalar machinery, so the statistics stay bit-identical
to the ``straight`` reference (the golden-parity suite asserts it).

Execution model
---------------

The trace's packed columns are wrapped in zero-copy numpy views
(:meth:`repro.trace.trace.Trace.numpy_columns`) and consumed in
**epochs**: directive boundaries split the trace, and an epoch cap
(``RNR_VECTOR_EPOCH``, default 8192) bounds each probe batch.  Within an
epoch the backend alternates between:

* **vector segments** — probe a window of entries against the L1 tag
  matrix (:class:`repro.cache.columnar.L1Mirror`) with one vectorized
  compare, take the leading all-hit prefix, and retire it with array
  arithmetic: with ``U_i = cumsum(gap+1)``, issue/retire cycles are
  ``C0 + (U_i - 1 + R0)//width`` / ``C0 + (U_i + R0)//width`` and every
  hit completes at ``issue + l1_latency`` — *provided* no pending-load
  stall interrupts the run.  The possible interrupts are enumerated
  exactly (see ``_cut_for_pending``): for each pre-segment pending load
  the first index where it would trigger a ROB/LSQ stall is computed
  with ``searchsorted``, and the segment is cut just before the earliest
  one.  Newly-appended hit loads can never stall a segment themselves
  (their completion is ``l1_latency`` cycles out, so at most
  ``(l1_latency + 2) * width`` instructions separate the oldest
  incomplete load from retirement — far below ROB/LSQ size; the
  eligibility check enforces the inequality).  Hits on lines whose fill
  is still in flight (``arrive > at_l1``) end the segment too: their
  completion is data-dependent, so the boundary entry is replayed
  through the real ``Core.issue_after``.
* **scalar spill** — the boundary entry (miss, in-flight hit, or stall
  trigger) runs the exact fast-loop body: ``Core.issue_after``,
  dict probe/promotion, ``CacheHierarchy._demand_miss``, prefetcher
  ``on_l2_event``.  Misses resync the one affected L1 mirror row.

After each vector segment the dict-LRU promotions are applied to the
authoritative set dicts (each distinct line once, in last-touch order —
the same end state as per-entry promotion), store dirty bits are set on
the real lines, the pending-load deque is reconciled (drained fronts
popped, surviving new loads appended), and the core's cycle/instruction
counters are written back — so the scalar code between segments sees
exactly the state it would have under per-entry execution.

Deferred statistics: vector hits accumulate in loop-local counters and
flush into ``SimStats`` at epoch boundaries (directives and run end),
the same contract the fast scalar loops already use.

Turbulence fallback: when the observed hit-run length collapses (miss-
dominated phases), probing overhead would make vectorization *slower*
than the scalar loop, so the backend processes doubling scalar bursts
(mirror marked stale, rebuilt on re-entry) and re-probes periodically —
worst case it degrades to fast-scalar speed plus a periodic probe.

Eligibility: no telemetry collector, no D-TLB, dict-LRU L1, a
prefetcher whose ``on_access`` is the base no-op (all L2-trained
prefetchers qualify; ``on_l2_event`` fires only from the scalar miss
spill), and the ``(l1_latency + 2) * width < min(rob, lsq)`` stall-
safety inequality.  Ineligible runs fall back to the fast scalar loops
— same statistics, no vector speedup.
"""

from __future__ import annotations

import os

try:
    import numpy as np
except ImportError:  # the 'fast' packaging extra is not installed
    np = None

from repro.cache.columnar import L1Mirror
from repro.cache.hierarchy import L2Event
from repro.config import LINE_SIZE
from repro.trace.record import KIND_DIRECTIVE, KIND_LOAD

#: True when the columnar backend can actually run (numpy importable).
HAVE_NUMPY = np is not None

#: Environment variable bounding entries per probe batch (epoch cap).
VECTOR_EPOCH_ENV = "RNR_VECTOR_EPOCH"

#: Default epoch cap: large enough to amortize probe setup, small enough
#: that the working arrays stay cache-resident.
DEFAULT_EPOCH = 8192

#: Floor for the epoch cap; below this the batch bookkeeping dominates.
MIN_EPOCH = 64

#: EMA hit-run length below which the backend switches to scalar bursts.
_TURBULENT_RUN = 8.0

#: Initial scalar-burst length; doubles while turbulence persists.
_BURST_START = 1024
_BURST_MAX = 32768


def resolve_vector_epoch(epoch=None) -> int:
    """Epoch cap: explicit argument > ``RNR_VECTOR_EPOCH`` > default.

    Shares the :func:`repro.sim.backend.resolve_engine_backend` shape:
    one validator for both sources, rejecting non-integers and values
    below :data:`MIN_EPOCH`.
    """
    source = "epoch"
    if epoch is None:
        env = os.environ.get(VECTOR_EPOCH_ENV, "").strip()
        if not env:
            return DEFAULT_EPOCH
        epoch, source = env, VECTOR_EPOCH_ENV
    try:
        value = int(epoch)
    except (TypeError, ValueError):
        raise ValueError(
            f"{source} must be an integer >= {MIN_EPOCH}, got {epoch!r}"
        ) from None
    if value < MIN_EPOCH:
        raise ValueError(f"{source} must be >= {MIN_EPOCH}, got {value}")
    return value


def vector_supported(engine, slim: bool) -> bool:
    """Can this run take the vector path (beyond the ``fast`` checks)?

    ``slim`` is the engine's "``on_access`` and ``on_l2_event`` are the
    base no-ops" flag; vector additionally tolerates an overridden
    ``on_l2_event`` (it only fires from the scalar miss spill), but not
    an overridden ``on_access`` (it would need to fire per entry).
    """
    if not HAVE_NUMPY:
        return False
    from repro.prefetchers.base import Prefetcher

    ptype = type(engine.prefetcher)
    if not (slim or ptype.on_access is Prefetcher.on_access):
        return False
    core_cfg = engine.config.core
    l1_latency = engine.hierarchy.l1.config.latency
    # Stall-safety inequality: loads appended *within* a hit run retire
    # l1_latency cycles after issue, so the live span of segment-local
    # pending loads is bounded by (l1_latency + 2) * width instructions;
    # it must stay clear of the ROB/LSQ limits for the closed-form
    # timing to be exact (it is, by a wide margin, for every shipped
    # SystemConfig preset).  l1_latency >= 2 guarantees a hit completion
    # always lands after its own retirement (every hit load pends).
    if l1_latency < 2:
        return False
    limit = min(core_cfg.rob_entries, core_cfg.lsq_entries)
    return (l1_latency + 2) * core_cfg.width < limit


def run_vector(engine, trace) -> None:
    """Execute ``trace`` on ``engine`` with the columnar backend.

    The caller (``SimulationEngine.run``) has already verified
    :func:`vector_supported`; this replaces only the per-entry loop —
    run finalization (core drain, prefetcher finalize, hierarchy drain)
    stays in the caller.
    """
    _VectorRun(engine, trace).run()


class _VectorRun:
    """One trace execution's columnar state and hybrid loop."""

    def __init__(self, engine, trace):
        self.engine = engine
        self.trace = trace
        self.core = engine.core
        self.hierarchy = engine.hierarchy
        core_cfg = engine.config.core
        self.width = core_cfg.width
        self.rob = core_cfg.rob_entries
        self.lsq = core_cfg.lsq_entries
        self.l1_latency = self.hierarchy.l1.config.latency
        self.sets, self.num_sets, _ = self.hierarchy.l1.demand_probe_state()
        self.mirror = L1Mirror(self.hierarchy.l1)
        self.epoch = resolve_vector_epoch()

        # Zero-copy u64/u8 views plus int64 working columns (one pass of
        # array casts up front; no per-entry Python objects after this).
        kinds_np, addrs_np, _pcs_np, gaps_np = trace.numpy_columns()
        self.kinds_np = kinds_np
        self.line_col = (addrs_np // LINE_SIZE).astype(np.int64)
        self.set_col = self.line_col % self.num_sets
        self.tag_col = self.line_col // self.num_sets
        self.gap_col = gaps_np.astype(np.int64)
        self.load_col = kinds_np == KIND_LOAD

        # Scalar-access columns (python ints per index, no numpy boxing).
        self.kinds, self.addrs, self.pcs, self.gaps = trace.packed_columns()

        prefetcher = engine.prefetcher
        from repro.prefetchers.base import Prefetcher

        if type(prefetcher).on_l2_event is Prefetcher.on_l2_event:
            self.on_l2_event = None
        else:
            self.on_l2_event = prefetcher.on_l2_event

        # Deferred L1 counters (flushed at directives and run end).
        self.l1_hits = 0
        self.l1_misses = 0

        # Mirror freshness + turbulence state.  ``run_ema`` tracks the
        # mean *completed* hit-run length (miss to miss); ``cur_run`` is
        # the in-progress run, which can span several probe batches and
        # stall-cut boundaries.
        self.stale = True
        self.run_ema = float(self.epoch)
        self.cur_run = 0
        self.burst = _BURST_START

    # ------------------------------------------------------------------
    def run(self) -> None:
        n = len(self.kinds_np)
        directive_positions = np.flatnonzero(
            self.kinds_np == KIND_DIRECTIVE
        ).tolist()
        start = 0
        for pos in directive_positions:
            self._run_span(start, pos)
            self._directive(pos)
            start = pos + 1
        self._run_span(start, n)
        self._flush_l1()

    def _flush_l1(self) -> None:
        if self.l1_hits or self.l1_misses:
            l1_stats = self.engine.stats.l1d
            l1_stats.demand_accesses += self.l1_hits + self.l1_misses
            l1_stats.demand_hits += self.l1_hits
            l1_stats.demand_misses += self.l1_misses
            self.l1_hits = 0
            self.l1_misses = 0

    def _directive(self, index: int) -> None:
        core = self.core
        gap = self.gaps[index]
        if gap:
            core.advance(gap)
        self._flush_l1()
        op, args = self.trace.directive_at(self.addrs[index])
        self.engine._handle_directive(op, args, core.cycle)
        # os.switch rewrites L1 membership wholesale; any directive is
        # rare enough that an unconditional rebuild-on-reentry is cheap.
        self.stale = True

    # ------------------------------------------------------------------
    def _run_span(self, start: int, end: int) -> None:
        """Consume the directive-free range [start, end)."""
        pos = start
        while pos < end:
            if self.run_ema < _TURBULENT_RUN:
                self.cur_run = 0
                burst_end = min(end, pos + self.burst)
                self._run_scalar_burst(pos, burst_end)
                pos = burst_end
                self.burst = min(self.burst * 2, _BURST_MAX)
                continue
            pos = self._vector_step(pos, end)

    def _vector_step(self, pos: int, end: int) -> int:
        """One probe batch starting at ``pos``; returns the new position."""
        if self.stale:
            self.mirror.rebuild()
            self.stale = False
        # Probe window: sized from the run-length EMA, but at least double
        # the in-progress run so a run longer than the EMA suggests ramps
        # up geometrically (O(log run) probes) instead of being chopped
        # into EMA-sized segments that multiply fixed per-segment costs.
        window = int(2.0 * self.run_ema) + 8
        if self.cur_run and 2 * self.cur_run > window:
            window = 2 * self.cur_run
        if window > self.epoch:
            window = self.epoch
        if window > end - pos:
            window = end - pos
        set_slice = self.set_col[pos : pos + window]
        tag_slice = self.tag_col[pos : pos + window]
        eq = self.mirror.tags[set_slice] == tag_slice[:, None]
        hit = eq.any(axis=1)
        if hit.all():
            prefix = window
        else:
            prefix = int(np.argmin(hit))
        if prefix == 0:
            # Miss (or empty-set probe) at the head: the run ended.  Fold
            # it into the EMA, then take the exact scalar path.
            self._note_run(self.cur_run)
            self.cur_run = 0
            self._scalar_entry(pos)
            return pos + 1
        ways = eq[:prefix].argmax(axis=1)
        # Hit execution never changes L1 membership, so one probe's hit
        # prefix stays valid across segment cuts: consume all of it,
        # alternating closed-form segments with exact scalar replays of
        # the cut boundaries (in-flight-line hits and pending-load stall
        # triggers), without re-probing the remainder.
        done = 0
        while done < prefix:
            done += self._vector_segment(
                pos + done,
                prefix - done,
                set_slice[done:prefix],
                ways[done:],
            )
            if done < prefix:
                self._scalar_entry(pos + done)
                done += 1
        self.cur_run += prefix
        return pos + prefix

    def _note_run(self, run: int) -> None:
        self.run_ema = 0.8 * self.run_ema + 0.2 * run
        if run >= _TURBULENT_RUN:
            self.burst = _BURST_START

    # ------------------------------------------------------------------
    def _vector_segment(self, pos, prefix, set_slice, ways) -> int:
        """Retire hit entries [pos, pos+e) in closed form; returns e."""
        core = self.core
        width = self.width
        cycle0 = core.cycle
        instr0 = core.instructions
        rem0 = core._gap_remainder

        unit = self.gap_col[pos : pos + prefix] + 1
        consumed_instr = np.cumsum(unit)  # U_i: instrs through entry i
        pre = consumed_instr - 1  # instrs retired when entry i issues
        issue_cycle = cycle0 + (pre + rem0) // width
        at_l1 = issue_cycle + self.l1_latency
        load_slice = self.load_col[pos : pos + prefix]
        arrive = self.mirror.arrive[set_slice, ways]

        # Cut 1: first load hitting a line whose fill is still in flight
        # (completion = arrive, not at_l1 — data-dependent, spill it).
        far = np.flatnonzero((arrive > at_l1) & load_slice)
        e = int(far[0]) if far.size else prefix

        # Cut 2: first entry where a pre-segment pending load triggers a
        # ROB/LSQ stall in Core.issue_after.
        cut = self._cut_for_pending(
            consumed_instr, issue_cycle, load_slice, cycle0, instr0, e
        )
        if cut < e:
            e = cut
        if e == 0:
            return 0

        # -- apply the segment ------------------------------------------
        end_cycle = int(cycle0 + (consumed_instr[e - 1] + rem0) // width)
        core.cycle = end_cycle
        core.instructions = instr0 + int(consumed_instr[e - 1])
        core._gap_remainder = int((consumed_instr[e - 1] + rem0) % width)
        self.l1_hits += e

        # Pending-load reconciliation: drain completed fronts exactly as
        # the per-entry loop would have (front-pop is confluent under a
        # nondecreasing cycle), then append the segment's loads that are
        # still incomplete at end_cycle.  While an older entry survives
        # at the front, *no* new load can drain, so all must be kept.
        pending = core._pending
        while pending and pending[0][1] <= end_cycle:
            pending.popleft()
        load_idx = np.flatnonzero(load_slice[:e])
        if load_idx.size:
            completions = at_l1[load_idx]
            retire_instr = instr0 + consumed_instr[load_idx]
            if pending:
                keep = 0  # blocked behind the surviving front: keep all
            else:
                keep = int(np.searchsorted(completions, end_cycle, side="right"))
            if keep < load_idx.size:
                pending.extend(
                    zip(
                        retire_instr[keep:].tolist(),
                        completions[keep:].tolist(),
                    )
                )

        # Store dirty bits on the real lines (hits never change
        # membership, so mirror way slots are valid for the whole batch).
        store_idx = np.flatnonzero(~load_slice[:e])
        if store_idx.size:
            refs = self.mirror.refs
            sets_l = set_slice
            for j in store_idx.tolist():
                refs[sets_l[j]][ways[j]].dirty = True

        # Dict-LRU promotions: each distinct line once, in last-touch
        # order — the same final recency order as per-entry promotion.
        touched = self.line_col[pos : pos + e]
        distinct, first_in_rev = np.unique(touched[::-1], return_index=True)
        lines_by_last_touch = distinct[np.argsort(-first_in_rev)]
        sets = self.sets
        num_sets = self.num_sets
        for line_addr in lines_by_last_touch.tolist():
            lines = sets[line_addr % num_sets]
            tag = line_addr // num_sets
            line = lines.pop(tag)
            lines[tag] = line
        return e

    def _cut_for_pending(
        self, consumed_instr, issue_cycle, load_slice, cycle0, instr0, limit
    ) -> int:
        """First segment index where ``Core.issue_after`` would stall.

        Walks the pre-segment pending deque front to back.  Entry ``k``
        becomes the deque front once entries ``0..k-1`` have drained
        (``front_start``), and drains itself at the first index whose
        issue cycle reaches its completion.  While it is the front, a
        stall triggers at the first index where the ROB span reaches
        ``rob_entries`` or the LSQ occupancy — the surviving old entries
        plus every new load so far (none can drain past an older front)
        — reaches ``lsq_entries``.  Both thresholds are monotone in the
        index, so each is one ``searchsorted``.  Once all pre-segment
        entries have drained, segment-local loads cannot stall (the
        eligibility inequality), so no further cut exists.
        """
        pending = self.core._pending
        while pending and pending[0][1] <= cycle0:
            pending.popleft()
        if not pending:
            return limit
        loads_cum = np.cumsum(load_slice)
        n_old = len(pending)
        front_start = 0
        for k, (old_instr, old_done) in enumerate(pending):
            drain = int(np.searchsorted(issue_cycle, old_done, side="left"))
            if drain < front_start:
                drain = front_start
            if front_start >= limit:
                return limit
            # ROB: first i with (instr0 + U_i - 1) - old_instr >= rob.
            rob_cut = int(
                np.searchsorted(
                    consumed_instr,
                    self.rob + old_instr - instr0 + 1,
                    side="left",
                )
            )
            # LSQ: occupancy at issue of entry i is (n_old - k) surviving
            # old entries + loads appended in [0, i): first i with
            # loads_cum[i-1] >= lsq - (n_old - k).
            need = self.lsq - (n_old - k)
            if need <= 0:
                lsq_cut = 0
            else:
                lsq_cut = int(np.searchsorted(loads_cum, need, side="left")) + 1
            trigger = rob_cut if rob_cut < lsq_cut else lsq_cut
            if trigger < front_start:
                trigger = front_start
            if trigger < drain and trigger < limit:
                return trigger
            front_start = drain
        return limit

    # ------------------------------------------------------------------
    # Scalar spill (exact fast-loop body, one entry)
    # ------------------------------------------------------------------
    def _scalar_entry(self, index: int) -> None:
        core = self.core
        kind = self.kinds[index]
        addr = self.addrs[index]
        issue = core.issue_after(self.gaps[index])
        line_addr = addr // LINE_SIZE
        set_idx = line_addr % self.num_sets
        lines = self.sets[set_idx]
        tag = line_addr // self.num_sets
        line = lines.get(tag)
        if line is not None:
            del lines[tag]
            lines[tag] = line
            self.l1_hits += 1
            at_l1 = issue + self.l1_latency
            arrive = line.arrive
            completion = arrive if arrive > at_l1 else at_l1
            if kind == KIND_LOAD:
                core.retire_load(completion)
            else:
                line.dirty = True
                core.retire_store(completion)
            return
        self.l1_misses += 1
        is_store = kind != KIND_LOAD
        result = self.hierarchy._demand_miss(
            line_addr, issue, issue + self.l1_latency, is_store
        )
        completion = result.completion
        if is_store:
            core.retire_store(completion)
        else:
            core.retire_load(completion)
        if self.on_l2_event is not None and result.l2_event is not L2Event.NONE:
            # flagged=False: vector eligibility requires the base
            # (always-False) on_access hook.
            self.on_l2_event(
                result.line_addr,
                self.pcs[index],
                issue,
                result.l2_event,
                False,
                completion,
            )
        if not self.stale:
            self.mirror.resync_set(set_idx)

    def _run_scalar_burst(self, start: int, end: int) -> None:
        """Miss-heavy stretch: run the fast-loop body entry by entry.

        The mirror is marked stale for the whole burst (one rebuild on
        re-entry beats per-miss resyncs), and consecutive-hit runs feed
        the EMA so the loop knows when the stream turns laminar again.
        """
        self.stale = True
        core = self.core
        issue_after = core.issue_after
        retire_load = core.retire_load
        retire_store = core.retire_store
        demand_miss = self.hierarchy._demand_miss
        on_l2_event = self.on_l2_event
        none_event = L2Event.NONE
        sets = self.sets
        num_sets = self.num_sets
        l1_latency = self.l1_latency
        kind_load = KIND_LOAD
        line_size = LINE_SIZE
        l1_hits = 0
        l1_misses = 0
        run = 0
        for index in range(start, end):
            kind = self.kinds[index]
            addr = self.addrs[index]
            issue = issue_after(self.gaps[index])
            line_addr = addr // line_size
            lines = sets[line_addr % num_sets]
            tag = line_addr // num_sets
            line = lines.get(tag)
            if line is not None:
                del lines[tag]
                lines[tag] = line
                l1_hits += 1
                run += 1
                at_l1 = issue + l1_latency
                arrive = line.arrive
                completion = arrive if arrive > at_l1 else at_l1
                if kind == kind_load:
                    retire_load(completion)
                else:
                    line.dirty = True
                    retire_store(completion)
                continue
            l1_misses += 1
            self._note_run(run)
            run = 0
            is_store = kind != kind_load
            result = demand_miss(line_addr, issue, issue + l1_latency, is_store)
            completion = result.completion
            if is_store:
                retire_store(completion)
            else:
                retire_load(completion)
            if on_l2_event is not None and result.l2_event is not none_event:
                on_l2_event(
                    result.line_addr,
                    self.pcs[index],
                    issue,
                    result.l2_event,
                    False,
                    completion,
                )
        if run:
            self._note_run(run)
        self.l1_hits += l1_hits
        self.l1_misses += l1_misses
