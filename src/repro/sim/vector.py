"""Numpy-columnar execution backend (``--engine vector``).

The scalar engine loops (:mod:`repro.sim.engine`) pay an irreducible
per-entry interpreter cost even on a pure L1-hit stream.  This backend
removes it for the entries where the simulation is *laminar* — runs of
consecutive L1 hits whose timing is closed-form — and spills everything
else to the exact scalar machinery, so the statistics stay bit-identical
to the ``straight`` reference (the golden-parity suite asserts it).

Execution model
---------------

The trace's packed columns are wrapped in zero-copy numpy views
(:meth:`repro.trace.trace.Trace.numpy_columns`) and consumed in
**epochs**: directive boundaries split the trace, and an epoch cap
(``RNR_VECTOR_EPOCH``, default 1024) bounds each probe batch.  Within an
epoch the backend alternates between:

* **vector segments** — probe a window of entries against the L1 tag
  matrix (:class:`repro.cache.columnar.L1Mirror`) with one vectorized
  compare, take the leading all-hit prefix, and retire it with array
  arithmetic: with ``U_i = cumsum(gap+1)``, issue/retire cycles are
  ``C0 + (U_i - 1 + R0)//width`` / ``C0 + (U_i + R0)//width`` and every
  hit completes at ``issue + l1_latency`` — *provided* no pending-load
  stall interrupts the run.  The possible interrupts are enumerated
  exactly (see ``_cut_for_pending``): for each pre-segment pending load
  the first index where it would trigger a ROB/LSQ stall is computed
  with ``searchsorted``, and the segment is cut just before the earliest
  one.  Newly-appended hit loads can never stall a segment themselves
  (their completion is ``l1_latency`` cycles out, so at most
  ``(l1_latency + 2) * width`` instructions separate the oldest
  incomplete load from retirement — far below ROB/LSQ size; the
  eligibility check enforces the inequality).  Hits on lines whose fill
  is still in flight (``arrive > at_l1``) end the segment too: their
  completion is data-dependent, so the boundary entry is replayed
  through the real ``Core.issue_after``.
* **scalar spill** — the boundary entry (miss, in-flight hit, or stall
  trigger) runs the exact fast-loop body: ``Core.issue_after``,
  prefetcher ``on_access``, dict probe/promotion,
  ``CacheHierarchy._demand_miss``, prefetcher ``on_l2_event``.  Misses
  resync the one affected L1 mirror row.

Hook-spill epochs
-----------------

Prefetchers that override ``on_access`` (rnr, imp, composites of them)
are served by **hook spill** instead of falling back per-run: the
prefetcher declares, via :meth:`repro.prefetchers.base.Prefetcher.
access_hook_filter`, a per-batch mask of the entries whose hooks can
have any effect (e.g. boundary-range loads while RnR records/replays).
Entries outside the mask skip their no-op hooks entirely; masked hit
entries fire the real ``on_access`` — in trace order, with the exact
closed-form issue cycles — after their segment's state writeback, and
spilled boundary entries run it inline and pass the returned flag to
``on_l2_event``.  Deferring a hit's hook to the end of its segment is
exact because hooks only touch prefetcher/L2/controller state through
explicit cycle arguments (prefetch fills never install into the L1, so
the probe's hit prefix and the mirror stay valid), and nothing else
reaches the L2 side before the next scalar spill.  The filter contract
guarantees the mask itself is stable across a batch: its inputs change
only through ``on_directive``/``on_l2_event``, both of which end the
batch.  A hooked prefetcher without a filter still falls back to the
scalar loops.

Multicore merge
---------------

:class:`repro.sim.multicore.MulticoreEngine` drives the same machinery
incrementally: each eligible core owns a :class:`_VectorRun` and the
k-way merge calls :meth:`_VectorRun.run_until` with the runner-up's
``(clock, idx)`` heap key.  Turns are bounded by a *shared-event
fence*, not by the raw clock: L1 hits are core-private (their cycles
are identical under any turn interleaving), so the probe path keeps
retiring them after the limit has passed, and only shared events —
misses, observable hook firings, directives, the exhaustion drain —
are held to the scalar merge's exact condition (processed iff the
pre-entry clock has not passed the limit).  Shared-LLC/MSHR/controller
interactions therefore arrive in the exact global order the scalar
merge produces, while lockstep cores still vectorize whole probe
batches per turn.  Scalar bursts yield at the scalar merge's exact
per-entry boundary — miss-heavy phases have nothing to overshoot.

After each vector segment the dict-LRU promotions are applied to the
authoritative set dicts (each distinct line once, in last-touch order —
the same end state as per-entry promotion), store dirty bits are set on
the real lines, the pending-load deque is reconciled (drained fronts
popped, surviving new loads appended), and the core's cycle/instruction
counters are written back — so the scalar code between segments sees
exactly the state it would have under per-entry execution.

Deferred statistics: vector hits accumulate in loop-local counters and
flush into ``SimStats`` at epoch boundaries (directives and run end),
the same contract the fast scalar loops already use.

Turbulence fallback: when the observed hit-run length collapses (miss-
dominated phases), probing overhead would make vectorization *slower*
than the scalar loop, so the backend processes doubling scalar bursts
(mirror marked stale, rebuilt on re-entry) and re-probes periodically —
worst case it degrades to fast-scalar speed plus a periodic probe.

Eligibility: no telemetry collector, no D-TLB, dict-LRU L1, a
prefetcher whose ``on_access`` is either the base no-op (all L2-trained
prefetchers; ``on_l2_event`` fires only from the scalar miss spill) or
narrowed by an ``access_hook_filter``, and the
``(l1_latency + 2) * width < min(rob, lsq)`` stall-safety inequality.
Ineligible runs fall back to the fast scalar loops — same statistics,
no vector speedup.
"""

from __future__ import annotations

import os
import warnings

try:
    import numpy as np
except ImportError:  # the 'fast' packaging extra is not installed
    np = None

from repro.cache.columnar import L1Mirror
from repro.cache.hierarchy import L2Event
from repro.config import LINE_SIZE
from repro.trace.record import KIND_DIRECTIVE, KIND_LOAD

#: True when the columnar backend can actually run (numpy importable).
HAVE_NUMPY = np is not None

#: Environment variable bounding entries per probe batch (epoch cap).
VECTOR_EPOCH_ENV = "RNR_VECTOR_EPOCH"

#: Default epoch cap: large enough to amortize probe setup, small enough
#: that one batch's working arrays (tag probe matrix, cumsums, cut
#: scratch) stay resident in the per-core caches.  The sweep in
#: ``benchmarks/bench_engine_throughput.py`` (``vector_epoch_sensitivity``
#: in BENCH_engine.json) measured 1024 ~9% faster than the previous 8192
#: default and ~48% faster than 65536 on the locality workload;
#: ``RNR_VECTOR_EPOCH`` still overrides for unusual traces.
DEFAULT_EPOCH = 1024

#: Floor for the epoch cap; below this the batch bookkeeping dominates.
MIN_EPOCH = 64

#: EMA hit-run length below which the backend switches to scalar bursts.
_TURBULENT_RUN = 8.0

#: Initial scalar-burst length; doubles while turbulence persists.
_BURST_START = 1024
_BURST_MAX = 32768


def resolve_vector_epoch(epoch=None) -> int:
    """Epoch cap: explicit argument > ``RNR_VECTOR_EPOCH`` > default.

    Shares the :func:`repro.sim.backend.resolve_engine_backend` shape:
    one validator for both sources, rejecting non-integers and values
    below :data:`MIN_EPOCH`.
    """
    source = "epoch"
    if epoch is None:
        env = os.environ.get(VECTOR_EPOCH_ENV, "").strip()
        if not env:
            return DEFAULT_EPOCH
        epoch, source = env, VECTOR_EPOCH_ENV
    try:
        value = int(epoch)
    except (TypeError, ValueError):
        raise ValueError(
            f"{source} must be an integer >= {MIN_EPOCH}, got {epoch!r}"
        ) from None
    if value < MIN_EPOCH:
        raise ValueError(f"{source} must be >= {MIN_EPOCH}, got {value}")
    return value


#: Process-wide latch for the numpy-missing fallback warning: sweeps run
#: hundreds of cells and one diagnostic is signal, five hundred is noise.
_numpy_fallback_warned = False


def warn_numpy_fallback(stacklevel: int = 3) -> None:
    """Warn (once per process) that ``vector`` degraded to the fast loops.

    Both the single-core engine and the multicore merge funnel through
    here, so repeated ``run()`` calls — a sweep's worth of cells —
    produce exactly one RuntimeWarning.  Tests reset
    ``_numpy_fallback_warned`` to re-arm it.
    """
    global _numpy_fallback_warned
    if _numpy_fallback_warned:
        return
    _numpy_fallback_warned = True
    warnings.warn(
        "numpy is not installed (pip install repro[fast]); engine "
        "backend 'vector' falling back to the fast scalar loops",
        RuntimeWarning,
        stacklevel=stacklevel,
    )


def resolve_hook_filter(prefetcher):
    """The prefetcher's access-hook filter, or None when it has none.

    ``getattr`` keeps duck-typed prefetchers (no ``Prefetcher`` base)
    working: they simply stay ineligible for hook spill.
    """
    getter = getattr(prefetcher, "access_hook_filter", None)
    return getter() if getter is not None else None


def vector_supported(engine, slim: bool) -> bool:
    """Can this run take the vector path (beyond the ``fast`` checks)?

    ``slim`` is the engine's "``on_access`` and ``on_l2_event`` are the
    base no-ops" flag; vector additionally tolerates an overridden
    ``on_l2_event`` (it only fires from the scalar miss spill), and an
    overridden ``on_access`` *if* the prefetcher narrows it with an
    ``access_hook_filter`` (hook-spill epochs).
    """
    if not HAVE_NUMPY:
        return False
    from repro.prefetchers.base import Prefetcher

    ptype = type(engine.prefetcher)
    if not (slim or ptype.on_access is Prefetcher.on_access):
        if resolve_hook_filter(engine.prefetcher) is None:
            return False
    core_cfg = engine.config.core
    l1_latency = engine.hierarchy.l1.config.latency
    # Stall-safety inequality: loads appended *within* a hit run retire
    # l1_latency cycles after issue, so the live span of segment-local
    # pending loads is bounded by (l1_latency + 2) * width instructions;
    # it must stay clear of the ROB/LSQ limits for the closed-form
    # timing to be exact (it is, by a wide margin, for every shipped
    # SystemConfig preset).  l1_latency >= 2 guarantees a hit completion
    # always lands after its own retirement (every hit load pends).
    if l1_latency < 2:
        return False
    limit = min(core_cfg.rob_entries, core_cfg.lsq_entries)
    return (l1_latency + 2) * core_cfg.width < limit


def run_vector(engine, trace) -> None:
    """Execute ``trace`` on ``engine`` with the columnar backend.

    The caller (``SimulationEngine.run``) has already verified
    :func:`vector_supported`; this replaces only the per-entry loop —
    run finalization (core drain, prefetcher finalize, hierarchy drain)
    stays in the caller.
    """
    _VectorRun(engine, trace).run()


def core_runner(engine, trace, slim: bool):
    """An incremental per-core runner for the multicore merge, or None.

    Returns a :class:`_VectorRun` whose :meth:`_VectorRun.run_until`
    consumes the core's trace up to a ``(clock, idx)`` merge limit, when
    the core's engine/prefetcher is vector-eligible; the merge keeps the
    scalar turn body for ineligible cores (mixed fleets are fine — the
    interleaving contract is the same either way).
    """
    if not vector_supported(engine, slim):
        return None
    return _VectorRun(engine, trace)


class _VectorRun:
    """One trace execution's columnar state and hybrid loop."""

    def __init__(self, engine, trace):
        self.engine = engine
        self.trace = trace
        self.core = engine.core
        self.hierarchy = engine.hierarchy
        core_cfg = engine.config.core
        self.width = core_cfg.width
        self.rob = core_cfg.rob_entries
        self.lsq = core_cfg.lsq_entries
        self.l1_latency = self.hierarchy.l1.config.latency
        self.sets, self.num_sets, _ = self.hierarchy.l1.demand_probe_state()
        self.mirror = L1Mirror(self.hierarchy.l1)
        self.epoch = resolve_vector_epoch()

        # Zero-copy u64/u8 views plus int64 working columns (one pass of
        # array casts up front; no per-entry Python objects after this).
        kinds_np, addrs_np, pcs_np, gaps_np = trace.numpy_columns()
        self.kinds_np = kinds_np
        self.addr_col = addrs_np
        self.pc_col = pcs_np
        self.line_col = (addrs_np // LINE_SIZE).astype(np.int64)
        self.set_col = self.line_col % self.num_sets
        self.tag_col = self.line_col // self.num_sets
        self.gap_col = gaps_np.astype(np.int64)
        self.load_col = kinds_np == KIND_LOAD

        # Scalar-access columns (python ints per index, no numpy boxing).
        self.kinds, self.addrs, self.pcs, self.gaps = trace.packed_columns()

        prefetcher = engine.prefetcher
        from repro.prefetchers.base import Prefetcher

        if type(prefetcher).on_l2_event is Prefetcher.on_l2_event:
            self.on_l2_event = None
        else:
            self.on_l2_event = prefetcher.on_l2_event
        # Hook-spill state: hooked prefetchers fire the real on_access for
        # masked entries (per-batch filter) and for every scalar spill.
        if type(prefetcher).on_access is Prefetcher.on_access:
            self.on_access = None
            self.hook_filter = None
        else:
            self.on_access = prefetcher.on_access
            self.hook_filter = resolve_hook_filter(prefetcher)
            assert self.hook_filter is not None, (
                "vector_supported must reject hooked prefetchers "
                "without an access_hook_filter"
            )

        # Deferred L1 counters (flushed at directives and run end).
        self.l1_hits = 0
        self.l1_misses = 0

        # Mirror freshness + turbulence state.  ``run_ema`` tracks the
        # mean *completed* hit-run length (miss to miss); ``cur_run`` is
        # the in-progress run, which can span several probe batches and
        # stall-cut boundaries.
        self.stale = True
        self.run_ema = float(self.epoch)
        self.cur_run = 0
        self.burst = _BURST_START

        # Cursor + merge-limit state: the single-core run consumes the
        # whole trace in one unbounded run_until; the multicore merge
        # calls run_until per turn with the runner-up's heap key.
        self.n = len(self.kinds_np)
        self._dir_pos = np.flatnonzero(self.kinds_np == KIND_DIRECTIVE).tolist()
        self._dir_i = 0
        self.pos = 0
        self.limit_clock = None
        self.limit_tie = False

    # ------------------------------------------------------------------
    def run(self) -> None:
        self.run_until(None, False)

    def run_until(self, limit_clock, limit_tie: bool) -> bool:
        """Consume entries for one merge turn bounded by ``limit_clock``.

        "Passed" is ``>`` for ``limit_tie=False`` and ``>=`` for
        ``limit_tie=True`` (the caller sets ``limit_tie = idx >
        limit_idx``, the heap key tie-break); ``limit_clock=None`` is
        unbounded.

        The turn is equivalent to the scalar merge's, but not entry-
        identical: only *shared* events — misses and hook firings (they
        reach the LLC/controller/prefetcher side), directives (metadata
        traffic, ``os.switch``), and the exhaustion drain — must keep
        the scalar merge's global order, and each is processed iff the
        pre-entry clock has not passed the limit, exactly the scalar
        merge's condition (it checks *after* each entry, so an entry
        runs iff its predecessor had not passed).  L1 hits are private
        to the core — their cycles are identical under any turn
        interleaving — so the probe path keeps retiring them after the
        limit has passed instead of yielding, then parks just before
        the next shared event.  That turns lockstep phases (cores a few
        cycles apart) into full probe batches per turn rather than one-
        or two-entry turns.  Scalar bursts (turbulent, miss-heavy
        phases) stop at the scalar merge's exact boundary instead —
        every miss is a shared event, so there is nothing to overshoot.

        Returns True when the trace is exhausted; deferred L1 counters
        are flushed then (the caller finishes/drains the core), so a
        return of False always means entries remain.
        """
        self.limit_clock = limit_clock
        self.limit_tie = limit_tie
        n = self.n
        core = self.core
        dirs = self._dir_pos
        while self.pos < n:
            pos = self.pos
            di = self._dir_i
            if di < len(dirs) and dirs[di] == pos:
                self._directive(pos)
                self._dir_i = di + 1
                self.pos = pos + 1
            else:
                self._span_step(dirs[di] if di < len(dirs) else n)
            if self.pos >= n:
                break
            if limit_clock is not None:
                c = core.cycle
                if c > limit_clock or (c == limit_clock and limit_tie):
                    return False
        self._flush_l1()
        return True

    def _flush_l1(self) -> None:
        if self.l1_hits or self.l1_misses:
            l1_stats = self.engine.stats.l1d
            l1_stats.demand_accesses += self.l1_hits + self.l1_misses
            l1_stats.demand_hits += self.l1_hits
            l1_stats.demand_misses += self.l1_misses
            self.l1_hits = 0
            self.l1_misses = 0

    def _directive(self, index: int) -> None:
        core = self.core
        gap = self.gaps[index]
        if gap:
            core.advance(gap)
        self._flush_l1()
        op, args = self.trace.directive_at(self.addrs[index])
        self.engine._handle_directive(op, args, core.cycle)
        # os.switch rewrites L1 membership wholesale; any directive is
        # rare enough that an unconditional rebuild-on-reentry is cheap.
        self.stale = True

    # ------------------------------------------------------------------
    def _span_step(self, end: int) -> None:
        """One burst or probe batch within the directive-free span ending
        at ``end``; advances ``self.pos`` (never past ``end``).

        Merge-limit handling differs by path: scalar bursts stop after
        the first entry whose post-clock passes the limit (shared misses
        force the scalar merge's exact turn boundary), while the probe
        path retires private L1 hits past the limit freely and only
        fences shared events (see ``run_until``)."""
        pos = self.pos
        if self.run_ema < _TURBULENT_RUN:
            burst_end = min(end, pos + self.burst)
            stop = self._run_scalar_burst(pos, burst_end)
            self.pos = stop
            if stop == burst_end:
                self.burst = min(self.burst * 2, _BURST_MAX)
            return
        self.pos = self._vector_step(pos, end)

    def _passed_limit(self) -> bool:
        c = self.core.cycle
        limit = self.limit_clock
        return c > limit or (c == limit and self.limit_tie)

    def _vector_step(self, pos: int, end: int) -> int:
        """One probe batch starting at ``pos``; returns the new position."""
        if self.stale:
            self.mirror.rebuild()
            self.stale = False
        # Probe window: sized from the run-length EMA, but at least double
        # the in-progress run so a run longer than the EMA suggests ramps
        # up geometrically (O(log run) probes) instead of being chopped
        # into EMA-sized segments that multiply fixed per-segment costs.
        window = int(2.0 * self.run_ema) + 8
        if self.cur_run and 2 * self.cur_run > window:
            window = 2 * self.cur_run
        if window > self.epoch:
            window = self.epoch
        if window > end - pos:
            window = end - pos
        set_slice = self.set_col[pos : pos + window]
        tag_slice = self.tag_col[pos : pos + window]
        eq = self.mirror.tags[set_slice] == tag_slice[:, None]
        hit = eq.any(axis=1)
        if hit.all():
            prefix = window
        else:
            prefix = int(np.argmin(hit))
        if prefix == 0:
            # Miss (or empty-set probe) at the head: the run ended.  Fold
            # it into the EMA, then take the exact scalar path.
            self._note_run(self.cur_run)
            self.cur_run = 0
            self._scalar_entry(pos)
            return pos + 1
        ways = eq[:prefix].argmax(axis=1)
        # Hook-spill mask over the hit prefix (filter-contract: stable
        # until the next directive or on_l2_event, i.e. for this whole
        # prefix — its internal cut boundaries are hits).
        if self.on_access is not None:
            hook_mask = self.hook_filter(
                self.load_col[pos : pos + prefix],
                self.addr_col[pos : pos + prefix],
                self.pc_col[pos : pos + prefix],
            )
        else:
            hook_mask = None
        # Hit execution never changes L1 membership, so one probe's hit
        # prefix stays valid across segment cuts: consume all of it,
        # alternating closed-form segments with exact scalar replays of
        # the cut boundaries (in-flight-line hits and pending-load stall
        # triggers), without re-probing the remainder.
        bounded = self.limit_clock is not None
        done = 0
        while done < prefix:
            done += self._vector_segment(
                pos + done,
                prefix - done,
                set_slice[done:prefix],
                ways[done:],
                None if hook_mask is None else hook_mask[done:],
            )
            if done >= prefix:
                break
            # The boundary entry at pos+done is an L1 hit — private, so
            # the merge limit does not fence it — unless its hook
            # observably fires (hook_mask) or it is the final trace
            # entry (whose processing triggers the shared exhaustion
            # drain): those park once the limit has passed, so shared
            # events keep the scalar merge's exact global order.
            if bounded and self._passed_limit():
                if hook_mask is not None and hook_mask[done]:
                    break
                if pos + done == self.n - 1:
                    break
            self._scalar_entry(pos + done)
            done += 1
        self.cur_run += done
        return pos + done

    def _note_run(self, run: int) -> None:
        self.run_ema = 0.8 * self.run_ema + 0.2 * run
        if run >= _TURBULENT_RUN:
            self.burst = _BURST_START

    # ------------------------------------------------------------------
    def _vector_segment(self, pos, prefix, set_slice, ways, hook_mask=None) -> int:
        """Retire hit entries [pos, pos+e) in closed form; returns e."""
        core = self.core
        width = self.width
        cycle0 = core.cycle
        instr0 = core.instructions
        rem0 = core._gap_remainder

        unit = self.gap_col[pos : pos + prefix] + 1
        consumed_instr = np.cumsum(unit)  # U_i: instrs through entry i
        pre = consumed_instr - 1  # instrs retired when entry i issues
        issue_cycle = cycle0 + (pre + rem0) // width
        at_l1 = issue_cycle + self.l1_latency
        load_slice = self.load_col[pos : pos + prefix]
        arrive = self.mirror.arrive[set_slice, ways]

        # Cut 1: first load hitting a line whose fill is still in flight
        # (completion = arrive, not at_l1 — data-dependent, spill it).
        far = np.flatnonzero((arrive > at_l1) & load_slice)
        e = int(far[0]) if far.size else prefix

        # Cut 2: first entry where a pre-segment pending load triggers a
        # ROB/LSQ stall in Core.issue_after.
        cut = self._cut_for_pending(
            consumed_instr, issue_cycle, load_slice, cycle0, instr0, e
        )
        if cut < e:
            e = cut

        # Cut 3 (multicore merge only): the shared-event fence.  L1 hits
        # are core-private — their cycles are identical under any turn
        # interleaving — so the merge limit does not bound them.  What
        # must keep the scalar merge's exact global order are the shared
        # events: an entry whose hook observably fires (it reaches the
        # prefetcher/L2 side) runs only while the pre-entry clock has
        # not passed the runner-up's key — the scalar merge processes an
        # entry iff the *previous* entry had not passed — and the final
        # trace entry parks once the limit has passed, so the exhaustion
        # drain (shared prefetch flush) keeps its merge-order slot.
        limit = self.limit_clock
        if limit is not None and e > 0:
            tie = self.limit_tie
            post_cycle = cycle0 + (consumed_instr + rem0) // width
            if hook_mask is not None:
                spill = np.flatnonzero(hook_mask[:e])
                if spill.size:
                    pre_clock = post_cycle[np.maximum(spill - 1, 0)]
                    if spill[0] == 0:
                        pre_clock[0] = cycle0
                    fenced = (pre_clock > limit) | (
                        (pre_clock == limit) & tie
                    )
                    stop = np.flatnonzero(fenced)
                    if stop.size:
                        e = int(spill[stop[0]])
            if e > 0 and pos + e == self.n:
                j = e - 1
                pre_j = int(post_cycle[j - 1]) if j > 0 else cycle0
                if pre_j > limit or (pre_j == limit and tie):
                    e = j
        if e == 0:
            return 0

        # -- apply the segment ------------------------------------------
        end_cycle = int(cycle0 + (consumed_instr[e - 1] + rem0) // width)
        core.cycle = end_cycle
        core.instructions = instr0 + int(consumed_instr[e - 1])
        core._gap_remainder = int((consumed_instr[e - 1] + rem0) % width)
        self.l1_hits += e

        # Pending-load reconciliation: drain completed fronts exactly as
        # the per-entry loop would have (front-pop is confluent under a
        # nondecreasing cycle), then append the segment's loads that are
        # still incomplete at end_cycle.  While an older entry survives
        # at the front, *no* new load can drain, so all must be kept.
        pending = core._pending
        while pending and pending[0][1] <= end_cycle:
            pending.popleft()
        load_idx = np.flatnonzero(load_slice[:e])
        if load_idx.size:
            completions = at_l1[load_idx]
            retire_instr = instr0 + consumed_instr[load_idx]
            if pending:
                keep = 0  # blocked behind the surviving front: keep all
            else:
                keep = int(np.searchsorted(completions, end_cycle, side="right"))
            if keep < load_idx.size:
                pending.extend(
                    zip(
                        retire_instr[keep:].tolist(),
                        completions[keep:].tolist(),
                    )
                )

        # Store dirty bits on the real lines (hits never change
        # membership, so mirror way slots are valid for the whole batch).
        store_idx = np.flatnonzero(~load_slice[:e])
        if store_idx.size:
            refs = self.mirror.refs
            sets_l = set_slice
            for j in store_idx.tolist():
                refs[sets_l[j]][ways[j]].dirty = True

        # Dict-LRU promotions: each distinct line once, in last-touch
        # order — the same final recency order as per-entry promotion.
        touched = self.line_col[pos : pos + e]
        distinct, first_in_rev = np.unique(touched[::-1], return_index=True)
        lines_by_last_touch = distinct[np.argsort(-first_in_rev)]
        sets = self.sets
        num_sets = self.num_sets
        for line_addr in lines_by_last_touch.tolist():
            lines = sets[line_addr % num_sets]
            tag = line_addr // num_sets
            line = lines.pop(tag)
            lines[tag] = line

        # Hook spill: fire the masked entries' real on_access hooks in
        # trace order with their exact closed-form issue cycles.  Hooks
        # only reach prefetcher/L2/controller state (prefetch fills never
        # install into the L1), so deferring them past the pure-L1 state
        # writeback above is invisible: the next event on the L2 side —
        # the following scalar spill — still sees them all, in order.
        # The returned flag is deliberately dropped: these entries are L1
        # hits, and the flag only feeds on_l2_event (misses).
        if hook_mask is not None:
            hooked = np.flatnonzero(hook_mask[:e])
            if hooked.size:
                on_access = self.on_access
                addrs = self.addrs
                pcs = self.pcs
                issue_list = issue_cycle[hooked].tolist()
                for j, issue in zip(hooked.tolist(), issue_list):
                    on_access(
                        addrs[pos + j], pcs[pos + j], issue, not load_slice[j]
                    )
        return e

    def _cut_for_pending(
        self, consumed_instr, issue_cycle, load_slice, cycle0, instr0, limit
    ) -> int:
        """First segment index where ``Core.issue_after`` would stall.

        Walks the pre-segment pending deque front to back.  Entry ``k``
        becomes the deque front once entries ``0..k-1`` have drained
        (``front_start``), and drains itself at the first index whose
        issue cycle reaches its completion.  While it is the front, a
        stall triggers at the first index where the ROB span reaches
        ``rob_entries`` or the LSQ occupancy — the surviving old entries
        plus every new load so far (none can drain past an older front)
        — reaches ``lsq_entries``.  Both thresholds are monotone in the
        index, so each is one ``searchsorted``.  Once all pre-segment
        entries have drained, segment-local loads cannot stall (the
        eligibility inequality), so no further cut exists.
        """
        pending = self.core._pending
        while pending and pending[0][1] <= cycle0:
            pending.popleft()
        if not pending:
            return limit
        loads_cum = np.cumsum(load_slice)
        n_old = len(pending)
        front_start = 0
        for k, (old_instr, old_done) in enumerate(pending):
            drain = int(np.searchsorted(issue_cycle, old_done, side="left"))
            if drain < front_start:
                drain = front_start
            if front_start >= limit:
                return limit
            # ROB: first i with (instr0 + U_i - 1) - old_instr >= rob.
            rob_cut = int(
                np.searchsorted(
                    consumed_instr,
                    self.rob + old_instr - instr0 + 1,
                    side="left",
                )
            )
            # LSQ: occupancy at issue of entry i is (n_old - k) surviving
            # old entries + loads appended in [0, i): first i with
            # loads_cum[i-1] >= lsq - (n_old - k).
            need = self.lsq - (n_old - k)
            if need <= 0:
                lsq_cut = 0
            else:
                lsq_cut = int(np.searchsorted(loads_cum, need, side="left")) + 1
            trigger = rob_cut if rob_cut < lsq_cut else lsq_cut
            if trigger < front_start:
                trigger = front_start
            if trigger < drain and trigger < limit:
                return trigger
            front_start = drain
        return limit

    # ------------------------------------------------------------------
    # Scalar spill (exact fast-loop body, one entry)
    # ------------------------------------------------------------------
    def _scalar_entry(self, index: int) -> None:
        core = self.core
        kind = self.kinds[index]
        addr = self.addrs[index]
        issue = core.issue_after(self.gaps[index])
        is_store = kind != KIND_LOAD
        if self.on_access is not None:
            flagged = self.on_access(addr, self.pcs[index], issue, is_store)
        else:
            flagged = False
        line_addr = addr // LINE_SIZE
        set_idx = line_addr % self.num_sets
        lines = self.sets[set_idx]
        tag = line_addr // self.num_sets
        line = lines.get(tag)
        if line is not None:
            del lines[tag]
            lines[tag] = line
            self.l1_hits += 1
            at_l1 = issue + self.l1_latency
            arrive = line.arrive
            completion = arrive if arrive > at_l1 else at_l1
            if is_store:
                line.dirty = True
                core.retire_store(completion)
            else:
                core.retire_load(completion)
            return
        self.l1_misses += 1
        result = self.hierarchy._demand_miss(
            line_addr, issue, issue + self.l1_latency, is_store
        )
        completion = result.completion
        if is_store:
            core.retire_store(completion)
        else:
            core.retire_load(completion)
        if self.on_l2_event is not None and result.l2_event is not L2Event.NONE:
            self.on_l2_event(
                result.line_addr,
                self.pcs[index],
                issue,
                result.l2_event,
                flagged,
                completion,
            )
        if not self.stale:
            self.mirror.resync_set(set_idx)

    def _run_scalar_burst(self, start: int, end: int) -> int:
        """Miss-heavy stretch: run the fast-loop body entry by entry.

        The mirror is marked stale for the whole burst (one rebuild on
        re-entry beats per-miss resyncs), and consecutive-hit runs feed
        the EMA so the loop knows when the stream turns laminar again.
        Returns the stop position: ``end``, unless the merge limit
        passed first (the passing entry is processed, then the burst
        stops — the scalar merge's turn semantics).
        """
        self.stale = True
        core = self.core
        issue_after = core.issue_after
        retire_load = core.retire_load
        retire_store = core.retire_store
        demand_miss = self.hierarchy._demand_miss
        on_access = self.on_access
        on_l2_event = self.on_l2_event
        none_event = L2Event.NONE
        sets = self.sets
        num_sets = self.num_sets
        l1_latency = self.l1_latency
        kind_load = KIND_LOAD
        line_size = LINE_SIZE
        limit = self.limit_clock
        limit_tie = self.limit_tie
        l1_hits = 0
        l1_misses = 0
        # The in-progress hit run carries across burst calls (limit-
        # stopped merge turns chop one run into many bursts; folding
        # each fragment into the EMA would read a long laminar run as
        # permanent turbulence and pin the core on the scalar path).
        run = self.cur_run
        self.cur_run = 0
        stop = end
        for index in range(start, end):
            kind = self.kinds[index]
            addr = self.addrs[index]
            issue = issue_after(self.gaps[index])
            is_store = kind != kind_load
            if on_access is not None:
                flagged = on_access(addr, self.pcs[index], issue, is_store)
            else:
                flagged = False
            line_addr = addr // line_size
            lines = sets[line_addr % num_sets]
            tag = line_addr // num_sets
            line = lines.get(tag)
            if line is not None:
                del lines[tag]
                lines[tag] = line
                l1_hits += 1
                run += 1
                at_l1 = issue + l1_latency
                arrive = line.arrive
                completion = arrive if arrive > at_l1 else at_l1
                if is_store:
                    line.dirty = True
                    retire_store(completion)
                else:
                    retire_load(completion)
            else:
                l1_misses += 1
                self._note_run(run)
                run = 0
                result = demand_miss(
                    line_addr, issue, issue + l1_latency, is_store
                )
                completion = result.completion
                if is_store:
                    retire_store(completion)
                else:
                    retire_load(completion)
                if on_l2_event is not None and result.l2_event is not none_event:
                    on_l2_event(
                        result.line_addr,
                        self.pcs[index],
                        issue,
                        result.l2_event,
                        flagged,
                        completion,
                    )
            if limit is not None:
                c = core.cycle
                if c > limit or (c == limit and limit_tie):
                    stop = index + 1
                    break
        if stop == end:
            # Ran to the burst boundary: fold the tail run so a long
            # all-hit burst lifts the EMA back toward laminar mode.
            if run:
                self._note_run(run)
        else:
            # Limit-stopped mid-run: the run is not over, carry it.
            self.cur_run = run
        self.l1_hits += l1_hits
        self.l1_misses += l1_misses
        return stop
