"""Trace-driven system simulator: engines, metrics, and the ideal-LLC bound."""

from repro.sim.engine import SimulationEngine
from repro.sim.multicore import MulticoreEngine
from repro.sim.ideal import run_ideal
from repro.sim.harness import ComparisonResult, compare_prefetchers
from repro.sim import metrics

__all__ = [
    "ComparisonResult",
    "MulticoreEngine",
    "SimulationEngine",
    "compare_prefetchers",
    "metrics",
    "run_ideal",
]
