"""Ideal bound: an infinite-sized LLC (paper Fig 6's "ideal" bars)."""

from __future__ import annotations

from dataclasses import replace

from repro.config import SystemConfig
from repro.sim.engine import SimulationEngine
from repro.stats import SimStats
from repro.trace.trace import Trace

_INFINITE_LLC_BYTES = 1 << 34  # effectively unbounded for our traces


def ideal_config(config: SystemConfig) -> SystemConfig:
    """The same system with an infinite LLC."""
    llc = replace(config.llc, size_bytes=_INFINITE_LLC_BYTES)
    return replace(config, llc=llc)


def run_ideal(config: SystemConfig, trace: Trace) -> SimStats:
    """Simulate ``trace`` with an infinite LLC and no prefetcher."""
    engine = SimulationEngine(ideal_config(config))
    return engine.run(trace)
