"""Engine backend selection shared by every entry point.

Three execution backends implement the same simulation semantics (the
golden-parity suite pins their ``SimStats`` equality):

* ``fast`` — the inlined scalar loops (:mod:`repro.sim.engine`), default;
* ``straight`` — the pre-fast-path reference loops, bit-identical by
  contract and kept as the golden oracle;
* ``vector`` — the numpy-columnar batched-epoch backend
  (:mod:`repro.sim.vector`); covers every registry prefetcher (hooked
  ones through hook-spill epochs) and the multicore k-way merge;
  requires numpy (the ``fast`` packaging extra) and degrades to ``fast``
  with a once-per-process warning when numpy is missing.

Resolution mirrors :func:`repro.experiments.pool.resolve_jobs`: explicit
argument > ``RNR_ENGINE`` environment variable > the legacy
``RNR_STRAIGHT_ENGINE`` flag (kept as an alias for ``straight``) >
``fast``.  Unknown values raise :class:`ValueError` from a single shared
validator, so the CLI, the engines, and tests all reject the same way.
"""

from __future__ import annotations

import os
from typing import Optional

#: Environment variable naming the engine backend for a run.
ENGINE_ENV = "RNR_ENGINE"

#: Legacy flag predating ``RNR_ENGINE``: any non-empty value forces the
#: straight reference loops (alias for ``RNR_ENGINE=straight``).
STRAIGHT_ENGINE_ENV = "RNR_STRAIGHT_ENGINE"

#: Valid backend names, in CLI display order.
ENGINE_BACKENDS = ("fast", "straight", "vector")


def _validate_backend(value, source: str) -> str:
    """Shared backend validator for the explicit-argument and
    ``RNR_ENGINE`` paths: must be one of :data:`ENGINE_BACKENDS`."""
    backend = str(value).strip().lower()
    if backend not in ENGINE_BACKENDS:
        raise ValueError(
            f"{source} must be one of {', '.join(ENGINE_BACKENDS)}, "
            f"got {value!r}"
        )
    return backend


def resolve_engine_backend(engine: Optional[str] = None) -> str:
    """Backend name: explicit argument > ``RNR_ENGINE`` > legacy
    ``RNR_STRAIGHT_ENGINE`` > ``fast``."""
    if engine is not None:
        return _validate_backend(engine, "engine")
    env = os.environ.get(ENGINE_ENV, "").strip()
    if env:
        return _validate_backend(env, ENGINE_ENV)
    if os.environ.get(STRAIGHT_ENGINE_ENV):
        return "straight"
    return "fast"
