"""Evaluation metrics exactly as the paper defines them (Section VII-A).

* Speedup — over the no-prefetcher baseline on the same trace.
* Coverage — Useful Prefetches / Total Baseline Misses.
* Accuracy — Useful Prefetches / Total Prefetches.
* L2 MPKI (Fig 7).
* Timeliness breakdown — on-time / early / late / out-of-window fractions
  of the issued prefetches (Fig 11).
* Additional off-chip traffic — TotalPrefetch * (1 - Accuracy) +
  MetadataTraffic, reported relative to baseline traffic (Fig 12).
* Storage overhead — metadata bytes / input bytes (Fig 13).
* Amortized speedup — 1 record iteration + (N-1) replays over N baseline
  iterations (the paper uses N = 100).
"""

from __future__ import annotations

from typing import Dict, List

from repro.stats import PhaseStats, SimStats


# ---------------------------------------------------------------------------
# Speedup
# ---------------------------------------------------------------------------
def speedup(baseline: SimStats, candidate: SimStats) -> float:
    """End-to-end speedup of ``candidate`` over ``baseline`` (same trace).

    A candidate with no cycles (a degraded/failed cell) yields NaN — the
    table renderer prints it as ``-`` and the geomean skips it — rather
    than a fake 0.0 that would silently drag aggregate speedups down.
    """
    if candidate.cycles == 0:
        return float("nan")
    return baseline.cycles / candidate.cycles


def iteration_phases(stats: SimStats) -> List[PhaseStats]:
    return [phase for phase in stats.phases if phase.name.startswith("iter")]


def phase_cycles(stats: SimStats, name: str) -> int:
    for phase in stats.phases:
        if phase.name == name:
            return phase.cycles
    raise KeyError(f"no phase named {name!r}; have {[p.name for p in stats.phases]}")


def replay_speedup(baseline: SimStats, candidate: SimStats, skip: int = 1) -> float:
    """Speedup over the steady-state (replay) iterations only, skipping the
    first ``skip`` iterations (the record iteration)."""
    base_phases = iteration_phases(baseline)[skip:]
    cand_phases = iteration_phases(candidate)[skip:]
    base_cycles = sum(p.cycles for p in base_phases)
    cand_cycles = sum(p.cycles for p in cand_phases)
    if cand_cycles == 0:
        return 0.0
    return base_cycles / cand_cycles


def amortized_speedup(
    baseline: SimStats, candidate: SimStats, total_iterations: int = 100
) -> float:
    """Paper Section VII-A.1: 100-iteration speedup, with iteration 0 being
    RnR's record iteration (slightly slower than baseline) and the rest
    replays."""
    base_phases = iteration_phases(baseline)
    cand_phases = iteration_phases(candidate)
    if not base_phases or not cand_phases:
        return speedup(baseline, candidate)
    base_iter = sum(p.cycles for p in base_phases) / len(base_phases)
    record_iter = cand_phases[0].cycles
    if len(cand_phases) > 1:
        replay_iter = sum(p.cycles for p in cand_phases[1:]) / (len(cand_phases) - 1)
    else:
        replay_iter = record_iter
    base_total = base_iter * total_iterations
    cand_total = record_iter + replay_iter * (total_iterations - 1)
    if cand_total == 0:
        return 0.0
    return base_total / cand_total


# ---------------------------------------------------------------------------
# Coverage / accuracy / MPKI
# ---------------------------------------------------------------------------
def coverage(baseline: SimStats, candidate: SimStats) -> float:
    """Useful prefetches over the *baseline's* demand L2 misses."""
    return candidate.prefetch.coverage(baseline.l2.demand_misses)


def accuracy(candidate: SimStats) -> float:
    return candidate.prefetch.accuracy


def l2_mpki(stats: SimStats) -> float:
    return stats.l2_mpki


def mpki_reduction(baseline: SimStats, candidate: SimStats) -> float:
    """Fractional reduction of demand L2 MPKI (Fig 7 commentary)."""
    if baseline.l2_mpki == 0:
        return 0.0
    return 1.0 - candidate.l2_mpki / baseline.l2_mpki


# ---------------------------------------------------------------------------
# Timeliness (Fig 11)
# ---------------------------------------------------------------------------
def timeliness_breakdown(stats: SimStats) -> Dict[str, float]:
    """Fractions of issued prefetches in the four paper categories."""
    prefetch = stats.prefetch
    issued = prefetch.issued
    if issued == 0:
        return {"on_time": 0.0, "early": 0.0, "late": 0.0, "out_of_window": 0.0}
    return {
        "on_time": prefetch.on_time / issued,
        "early": prefetch.early / issued,
        "late": prefetch.late / issued,
        "out_of_window": prefetch.out_of_window / issued,
    }


# ---------------------------------------------------------------------------
# Off-chip traffic (Fig 12)
# ---------------------------------------------------------------------------
def baseline_traffic_lines(stats: SimStats) -> int:
    return stats.traffic.demand_lines + stats.traffic.writeback_lines


def additional_traffic_ratio(baseline: SimStats, candidate: SimStats) -> float:
    """Extra off-chip lines (wasted prefetches + metadata) relative to the
    baseline's demand traffic."""
    base_lines = baseline_traffic_lines(baseline)
    if base_lines == 0:
        return 0.0
    extra = candidate.traffic.total - base_lines
    return max(0.0, extra / base_lines)


# ---------------------------------------------------------------------------
# Storage overhead (Fig 13)
# ---------------------------------------------------------------------------
def storage_overhead(metadata_bytes: int, input_bytes: int) -> float:
    """RnR metadata size as a fraction of the workload's input size."""
    if input_bytes <= 0:
        raise ValueError(f"input size must be positive, got {input_bytes}")
    return metadata_bytes / input_bytes
