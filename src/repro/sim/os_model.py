"""Operating-system effects (paper Section IV-C).

The paper argues RnR survives context switches cheaply: the 86.5 B of
architectural + internal state is saved/restored around the switch, the
metadata lives in ordinary (per-process) heap memory, and the dominant
cost — cache warm-up — is one the process pays anyway.

This module gives the simulator a way to *exercise* that claim:

* :func:`emit_context_switch` — workload-side helper emitting the
  Table I pause, an ``os.switch`` directive, and the resume;
* :func:`apply_switch` — engine-side interpretation: evict the private
  caches' contents in proportion to how long the process was descheduled
  (the other process's working set displacing ours) and advance the local
  clock by the time away.

Because the RnR metadata is in memory and the registers were saved,
recording/replaying continues correctly afterwards — which the
integration tests assert.
"""

from __future__ import annotations

import random

from repro.cache.hierarchy import CacheHierarchy
from repro.rnr.api import RnRInterface
from repro.trace.builder import TraceBuilder

#: Directive op interpreted by the simulation engine.
SWITCH_OP = "os.switch"

#: Synthetic address region "owned" by the other process.
_FOREIGN_BASE = 0x7000_0000


def emit_context_switch(
    builder: TraceBuilder,
    rnr: RnRInterface | None,
    away_cycles: int = 50_000,
    pollution: float = 1.0,
) -> None:
    """Annotate a context switch into the trace.

    ``pollution`` is the fraction of the private caches the other process
    displaces while we are away (1.0 = complete warm-up loss, the paper's
    worst case [26], [33]).
    """
    if not 0.0 <= pollution <= 1.0:
        raise ValueError(f"pollution must be in [0, 1], got {pollution}")
    if away_cycles < 0:
        raise ValueError(f"away_cycles must be >= 0, got {away_cycles}")
    if rnr is not None:
        rnr.prefetch_state.pause()
    builder.directive(SWITCH_OP, away_cycles, pollution)
    if rnr is not None:
        rnr.prefetch_state.resume()


def apply_switch(
    hierarchy: CacheHierarchy,
    cycle: int,
    away_cycles: int,
    pollution: float,
    seed: int = 0,
) -> int:
    """Engine-side model of the switch; returns the resume cycle.

    The other process's execution is not simulated; its effect on us is
    the displacement of ``pollution`` of each private cache (replaced by
    foreign lines that we will never touch, i.e. effectively invalidated)
    plus the wall-clock time away.
    """
    rng = random.Random(seed ^ cycle)
    for cache in (hierarchy.l1, hierarchy.l2):
        resident = [line_addr for line_addr, _ in cache.resident_lines()]
        displaced = rng.sample(resident, int(len(resident) * pollution))
        for index, line_addr in enumerate(displaced):
            victim = cache.invalidate(line_addr)
            if victim is None:
                continue
            if victim.prefetched:
                hierarchy.stats.l2.prefetch_evicted_unused += 1
                if hierarchy.unused_prefetch_classifier is not None:
                    hierarchy.unused_prefetch_classifier(line_addr, victim.pf_window)
            if victim.dirty:
                hierarchy.stats.traffic.writeback_lines += 1
                hierarchy.controller.write(line_addr * 64, cycle)
            foreign = (_FOREIGN_BASE // 64) + cycle % 1024 + index
            cache.fill(foreign, arrive=cycle)
    return cycle + away_cycles
