"""Best-Offset prefetcher (Michaud [36], cited in the paper's
introduction among prior hardware prefetchers).

BOP learns the single best *offset* D such that line X being accessed now
makes X + D likely soon: a round-robin score tournament over a fixed
offset list, scoring an offset when the line that would have prefetched
the current access (X - D) was recently accessed.  Simple, stream/stride
friendly, irregular-hostile — a useful calibration point between
next-line and the pattern prefetchers.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.cache.hierarchy import L2Event
from repro.prefetchers.base import Prefetcher

#: Michaud's offset candidates are products of small primes; a compact
#: subset keeps the learning rounds short at simulation scale.
DEFAULT_OFFSETS = (1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16, 20, 24, 30, 32)


class BestOffsetPrefetcher(Prefetcher):
    name = "bop"

    def __init__(
        self,
        offsets: tuple = DEFAULT_OFFSETS,
        score_max: int = 31,
        round_max: int = 100,
        bad_score: int = 1,
        recent_entries: int = 256,
    ):
        super().__init__()
        self.offsets = tuple(offsets)
        self.score_max = score_max
        self.round_max = round_max
        self.bad_score = bad_score
        self.recent_entries = recent_entries
        self._scores = {offset: 0 for offset in self.offsets}
        self._round = 0
        self._test_index = 0
        self._best_offset = 1
        self._active = True  # prefetching on/off (off when best score is bad)
        self._recent: OrderedDict[int, bool] = OrderedDict()

    # ------------------------------------------------------------------
    def _remember(self, line_addr: int) -> None:
        self._recent[line_addr] = True
        self._recent.move_to_end(line_addr)
        if len(self._recent) > self.recent_entries:
            self._recent.popitem(last=False)

    def _finish_round(self) -> None:
        best = max(self._scores, key=self._scores.get)
        self._best_offset = best
        self._active = self._scores[best] > self.bad_score
        self._scores = {offset: 0 for offset in self.offsets}
        self._round = 0

    def _train(self, line_addr: int) -> None:
        offset = self.offsets[self._test_index]
        if line_addr - offset in self._recent:
            self._scores[offset] += 1
            if self._scores[offset] >= self.score_max:
                self._finish_round()
                self._test_index = 0
                return
        self._test_index = (self._test_index + 1) % len(self.offsets)
        if self._test_index == 0:
            self._round += 1
            if self._round >= self.round_max:
                self._finish_round()

    # ------------------------------------------------------------------
    def on_l2_event(self, line_addr, pc, cycle, event, flagged, completion=0):
        """L2 outcome hook (training input)."""
        if event == L2Event.HIT:
            return
        self._train(line_addr)
        self._remember(line_addr)
        if self._active:
            self._issue(line_addr + self._best_offset, cycle)

    @property
    def best_offset(self) -> int:
        """The currently selected prefetch offset."""
        return self._best_offset
