"""SteMS — Spatio-Temporal Memory Streaming (Somogyi et al. [52]).

SteMS couples spatial memory streaming (per-region footprints) with
temporal streaming of the *region trigger* sequence: the order in which
regions were entered is recorded, and on a trigger match the successor
regions' footprints are replayed ahead of the program.

The paper's critique (Section II): order is recorded *among* regions but
not *within* a region, and the trigger sequence is pattern-matched
globally, so long irregular sequences that repeat only across iterations
(not across regions) are poorly captured.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.cache.hierarchy import L2Event
from repro.prefetchers.base import Prefetcher


class SteMSPrefetcher(Prefetcher):
    name = "stems"

    def __init__(
        self,
        region_lines: int = 32,
        footprint_entries: int = 4096,
        history_entries: int = 8192,
        region_lookahead: int = 2,
        active_regions: int = 64,
    ):
        super().__init__()
        self.region_lines = region_lines
        self.footprint_entries = footprint_entries
        self.history_entries = history_entries
        self.region_lookahead = region_lookahead
        self.active_regions = active_regions
        # Spatial half: last observed footprint per region trigger.
        self._footprints: OrderedDict[tuple, int] = OrderedDict()
        self._accumulating: dict[int, int] = {}
        self._accumulation_order: list[int] = []
        # Temporal half: GHB over region triggers.
        self._trigger_history: list[tuple[int, int]] = []  # (region, pc)
        self._trigger_index: dict[int, int] = {}  # region -> last position
        self._head = 0

    # ------------------------------------------------------------------
    def _store_footprint(self, pc: int, region: int, footprint: int) -> None:
        key = (pc, region)
        self._footprints[key] = footprint
        self._footprints.move_to_end(key)
        if len(self._footprints) > self.footprint_entries:
            self._footprints.popitem(last=False)

    def _close_region(self, region: int) -> None:
        footprint = self._accumulating.pop(region, None)
        if footprint is None:
            return
        # Footprints are keyed by the trigger PC recorded in the history.
        position = self._trigger_index.get(region)
        pc = self._trigger_history[position % self.history_entries][1] if position is not None else 0
        self._store_footprint(pc, region, footprint)

    def _replay(self, region: int, cycle: int) -> None:
        """Stream the footprints of the regions that followed last time."""
        position = self._trigger_index.get(region)
        if position is None or position < self._head - len(self._trigger_history):
            return
        for ahead in range(1, self.region_lookahead + 1):
            successor_pos = position + ahead
            if successor_pos >= self._head:
                break
            if successor_pos < self._head - len(self._trigger_history):
                continue
            successor, successor_pc = self._trigger_history[
                successor_pos % self.history_entries
            ]
            footprint = self._footprints.get((successor_pc, successor), 0)
            if not footprint:
                footprint = 1  # at least the trigger line
            base = successor * self.region_lines
            index = 0
            bits = footprint
            while bits:
                if bits & 1:
                    self._issue(base + index, cycle)
                bits >>= 1
                index += 1

    # ------------------------------------------------------------------
    def on_l2_event(self, line_addr, pc, cycle, event, flagged, completion=0):
        """L2 outcome hook (training input)."""
        if event == L2Event.HIT:
            return
        region = line_addr // self.region_lines
        offset = line_addr % self.region_lines
        if region in self._accumulating:
            self._accumulating[region] |= 1 << offset
            return
        # New region trigger: record in temporal history, replay successors.
        if len(self._trigger_history) < self.history_entries:
            self._trigger_history.append((region, pc))
        else:
            self._trigger_history[self._head % self.history_entries] = (region, pc)
        previous = self._trigger_index.get(region)
        self._trigger_index[region] = self._head
        self._head += 1

        if previous is not None:
            saved = self._trigger_index[region]
            self._trigger_index[region] = previous
            self._replay(region, cycle)
            self._trigger_index[region] = saved

        self._accumulating[region] = 1 << offset
        self._accumulation_order.append(region)
        if len(self._accumulation_order) > self.active_regions:
            self._close_region(self._accumulation_order.pop(0))

    def finalize(self, cycle):
        """End-of-trace hook."""
        for region in list(self._accumulation_order):
            self._close_region(region)
        self._accumulation_order.clear()
