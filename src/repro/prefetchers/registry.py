"""Name-based prefetcher construction for experiments and examples."""

from __future__ import annotations

from typing import Callable, Dict

from repro.prefetchers.base import NullPrefetcher, Prefetcher
from repro.prefetchers.bingo import BingoPrefetcher
from repro.prefetchers.bop import BestOffsetPrefetcher
from repro.prefetchers.domino import DominoPrefetcher
from repro.prefetchers.composite import CompositePrefetcher
from repro.prefetchers.droplet import DropletPrefetcher
from repro.prefetchers.ghb import GHBPrefetcher
from repro.prefetchers.imp import IMPPrefetcher
from repro.prefetchers.isb import ISBPrefetcher
from repro.prefetchers.misb import MISBPrefetcher
from repro.prefetchers.nextline import NextLinePrefetcher
from repro.prefetchers.stems import SteMSPrefetcher
from repro.prefetchers.stream import StreamPrefetcher


def _make_rnr(**kwargs) -> Prefetcher:
    from repro.rnr.prefetcher import RnRPrefetcher

    return RnRPrefetcher(**kwargs)


def _make_rnr_combined(**kwargs) -> Prefetcher:
    from repro.rnr.prefetcher import RnRPrefetcher

    rnr = RnRPrefetcher(**kwargs)
    stream = StreamPrefetcher(exclude_flagged=True)
    combined = CompositePrefetcher([rnr, stream])
    combined.name = "rnr-combined"
    return combined


PREFETCHERS: Dict[str, Callable[..., Prefetcher]] = {
    "baseline": NullPrefetcher,
    "nextline": NextLinePrefetcher,
    "stream": StreamPrefetcher,
    "ghb": GHBPrefetcher,
    "domino": DominoPrefetcher,
    "bop": BestOffsetPrefetcher,
    "isb": ISBPrefetcher,
    "misb": MISBPrefetcher,
    "bingo": BingoPrefetcher,
    "stems": SteMSPrefetcher,
    "droplet": DropletPrefetcher,
    "imp": IMPPrefetcher,
    "rnr": _make_rnr,
    "rnr-combined": _make_rnr_combined,
}


def make_prefetcher(name: str, **kwargs) -> Prefetcher:
    """Instantiate a prefetcher by its registry name."""
    try:
        factory = PREFETCHERS[name]
    except KeyError:
        known = ", ".join(sorted(PREFETCHERS))
        raise ValueError(f"unknown prefetcher {name!r}; known: {known}") from None
    return factory(**kwargs)
