"""IMP — Indirect Memory Prefetcher (Yu et al. [60]), related-work extra.

IMP detects ``A[B[i]]`` patterns in hardware: it watches a streaming index
array ``B``, reads the index *values* as they arrive, and learns the affine
map ``addr = base + value * size`` by correlating candidate (base, size)
pairs against observed misses.  Once confident, it prefetches the indirect
targets for index values that the stream runs ahead of.

The paper cites IMP's weaknesses (Section VIII): value-dependent address
generation suffers from low accuracy and ill-timed prefetches.  IMP is not
in the paper's evaluation figures; it is included here for the related-work
comparison and ablation benches.

As with DROPLET, a ``value_reader`` callback stands in for the hardware
seeing the returned index data: ``value_reader(byte_addr, elem_size)``
returns the integer stored at that simulated address.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.cache.hierarchy import L2Event
from repro.config import LINE_SIZE
from repro.prefetchers.base import Prefetcher

ValueReader = Callable[[int, int], int]


class _IndirectPattern:
    __slots__ = ("base", "elem", "confidence")

    def __init__(self, base: int, elem: int):
        self.base = base
        self.elem = elem
        self.confidence = 1


class IMPPrefetcher(Prefetcher):
    name = "imp"

    def __init__(
        self,
        value_reader: Optional[ValueReader] = None,
        index_elem: int = 4,
        candidate_sizes: tuple = (4, 8),
        confidence_threshold: int = 3,
        lookahead: int = 16,
        recent_values: int = 8,
    ):
        super().__init__()
        self.value_reader = value_reader
        self.index_elem = index_elem
        self.candidate_sizes = candidate_sizes
        self.confidence_threshold = confidence_threshold
        self.lookahead = lookahead
        self._recent_values: deque[int] = deque(maxlen=recent_values)
        self._candidates: dict[tuple[int, int], _IndirectPattern] = {}
        self._pattern: Optional[_IndirectPattern] = None
        self._index_stride_pc: dict[int, int] = {}  # pc -> last line
        self._index_pcs: set[int] = set()
        self._last_index_addr: Optional[int] = None

    # ------------------------------------------------------------------
    def _detect_index_stream(self, pc: int, line_addr: int) -> bool:
        """A PC touching consecutive lines is treated as the index stream."""
        last = self._index_stride_pc.get(pc)
        self._index_stride_pc[pc] = line_addr
        if last is not None and 0 <= line_addr - last <= 1:
            self._index_pcs.add(pc)
            return True
        return pc in self._index_pcs

    def _harvest_values(self, address: int) -> None:
        if self.value_reader is None:
            return
        value = self.value_reader(address, self.index_elem)
        if value is not None:
            self._recent_values.append(value)

    def _train(self, miss_addr: int) -> None:
        """Correlate a miss address against recent index values."""
        for value in self._recent_values:
            for elem in self.candidate_sizes:
                base = miss_addr - value * elem
                key = (base, elem)
                pattern = self._candidates.get(key)
                if pattern is None:
                    if len(self._candidates) < 64:
                        self._candidates[key] = _IndirectPattern(base, elem)
                    continue
                pattern.confidence += 1
                if pattern.confidence >= self.confidence_threshold:
                    self._pattern = pattern

    # ------------------------------------------------------------------
    def on_access(self, address, pc, cycle, is_store):
        # The index stream is identified on the access side so values can
        # be harvested even on cache hits (the hardware sees all loads).
        """Demand-reference hook; returns the RnR packet flag."""
        if not is_store and pc in self._index_pcs:
            self._harvest_values(address)
            pattern = self._pattern
            if pattern is not None and self.value_reader is not None:
                ahead_addr = address + self.lookahead * self.index_elem
                value = self.value_reader(ahead_addr, self.index_elem)
                if value is not None:
                    target = pattern.base + value * pattern.elem
                    self._issue(target // LINE_SIZE, cycle)
        return False

    def access_hook_filter(self):
        """Vector-backend hook spill: ``on_access`` only acts on loads
        whose PC is a recognised index stream.  ``_index_pcs`` grows
        exclusively inside ``on_l2_event`` (i.e. at L1 misses, which end
        a vector probe batch), so the mask is stable across one batch.
        """
        import numpy as np  # only called by the vector backend

        def index_stream_loads(is_load, addrs, pcs):
            if not self._index_pcs:
                return None
            index_pcs = np.fromiter(
                self._index_pcs, dtype=np.uint64, count=len(self._index_pcs)
            )
            return is_load & np.isin(pcs, index_pcs)

        return index_stream_loads

    def on_l2_event(self, line_addr, pc, cycle, event, flagged, completion=0):
        """L2 outcome hook (training input)."""
        if self._detect_index_stream(pc, line_addr):
            return
        if event == L2Event.MISS and self._pattern is None:
            self._train(line_addr * LINE_SIZE)
