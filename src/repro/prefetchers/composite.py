"""Composition of prefetchers.

Section V-D: RnR filters its address ranges out of the conventional stream
prefetcher's training so both can run side by side ("RnR-Combined").  The
composite forwards every hook to each child; the *flag* computed by the
first child that claims an access is passed to all children's training
hooks (this is the packet flag of Fig 4 telling the stream prefetcher to
skip RnR's structures).
"""

from __future__ import annotations

from typing import Sequence

from repro.prefetchers.base import Prefetcher


class CompositePrefetcher(Prefetcher):
    name = "composite"

    def __init__(self, children: Sequence[Prefetcher]):
        super().__init__()
        if not children:
            raise ValueError("composite prefetcher needs at least one child")
        self.children = list(children)
        self.name = "+".join(child.name for child in self.children)

    def attach(self, hierarchy, stats):
        """Bind to a core's hierarchy before simulation."""
        super().attach(hierarchy, stats)
        for child in self.children:
            child.attach(hierarchy, stats)

    def attach_telemetry(self, collector):
        """Forward the collector to every child."""
        super().attach_telemetry(collector)
        for child in self.children:
            child.attach_telemetry(collector)

    def on_access(self, address, pc, cycle, is_store):
        """Demand-reference hook; returns the RnR packet flag."""
        flagged = False
        for child in self.children:
            flagged = child.on_access(address, pc, cycle, is_store) or flagged
        return flagged

    def access_hook_filter(self):
        """Vector-backend hook spill: the union of the children's masks.

        A child that keeps the base no-op ``on_access`` contributes
        nothing; a child that overrides it without providing a filter
        makes the whole composite ineligible (return None).  Entries in
        the union run the composite ``on_access`` — children outside
        their own mask are no-ops by the filter contract, so firing them
        is harmless.
        """
        filters = []
        for child in self.children:
            if type(child).on_access is Prefetcher.on_access:
                continue
            getter = getattr(child, "access_hook_filter", None)
            child_filter = getter() if getter is not None else None
            if child_filter is None:
                return None
            filters.append(child_filter)
        if not filters:

            def nothing(is_load, addrs, pcs):
                return None

            return nothing
        if len(filters) == 1:
            return filters[0]

        def union(is_load, addrs, pcs):
            mask = None
            for child_filter in filters:
                child_mask = child_filter(is_load, addrs, pcs)
                if child_mask is None:
                    continue
                mask = child_mask if mask is None else mask | child_mask
            return mask

        return union

    def on_l2_event(self, line_addr, pc, cycle, event, flagged, completion=0):
        """L2 outcome hook (training input)."""
        for child in self.children:
            child.on_l2_event(line_addr, pc, cycle, event, flagged, completion)

    def on_directive(self, op, args, cycle):
        """Software-directive hook (Table I calls)."""
        for child in self.children:
            child.on_directive(op, args, cycle)

    def finalize(self, cycle):
        """End-of-trace hook."""
        for child in self.children:
            child.finalize(cycle)
