"""Bingo spatial data prefetcher (Bakhshalipour et al. [9]).

Bingo records, per spatial region (2 KB by default), the *footprint* of
lines touched while the region is active, associated with both a long
event (trigger PC + trigger address) and a short event (trigger PC +
in-region offset).  When a region is touched for the first time, the
history is probed longest-event-first and the stored footprint is
prefetched.

Spatial prefetchers shine when many regions share one layout (OLTP/DSS);
on pointer-free but *order-dependent* irregular gathers they recover only
the region-local footprint and none of the ordering — which is why Bingo
sits at mid coverage / low accuracy in Figs 1, 8 and 9.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.cache.hierarchy import L2Event
from repro.prefetchers.base import Prefetcher


class _ActiveRegion:
    __slots__ = ("trigger_pc", "trigger_offset", "footprint")

    def __init__(self, trigger_pc: int, trigger_offset: int):
        self.trigger_pc = trigger_pc
        self.trigger_offset = trigger_offset
        self.footprint = 1 << trigger_offset


class BingoPrefetcher(Prefetcher):
    name = "bingo"

    def __init__(
        self,
        region_lines: int = 32,  # 2 KB regions of 64 B lines
        active_regions: int = 64,
        history_entries: int = 4096,
    ):
        super().__init__()
        self.region_lines = region_lines
        self.active_limit = active_regions
        self.history_entries = history_entries
        self._active: OrderedDict[int, _ActiveRegion] = OrderedDict()
        self._history_long: OrderedDict[tuple, int] = OrderedDict()
        self._history_short: OrderedDict[tuple, int] = OrderedDict()

    # ------------------------------------------------------------------
    def _region_of(self, line_addr: int) -> tuple[int, int]:
        return line_addr // self.region_lines, line_addr % self.region_lines

    def _retire_region(self, region: int, state: _ActiveRegion) -> None:
        """Move a finished region's footprint into the history tables."""
        long_key = (state.trigger_pc, region, state.trigger_offset)
        short_key = (state.trigger_pc, state.trigger_offset)
        for table, key in (
            (self._history_long, long_key),
            (self._history_short, short_key),
        ):
            table[key] = state.footprint
            table.move_to_end(key)
            if len(table) > self.history_entries:
                table.popitem(last=False)

    def _predict(self, pc: int, region: int, offset: int) -> int:
        """Probe history longest-event-first; returns a footprint bitmap."""
        footprint = self._history_long.get((pc, region, offset))
        if footprint is not None:
            return footprint
        return self._history_short.get((pc, offset), 0)

    # ------------------------------------------------------------------
    def on_l2_event(self, line_addr, pc, cycle, event, flagged, completion=0):
        """L2 outcome hook (training input)."""
        if event == L2Event.HIT:
            return
        region, offset = self._region_of(line_addr)
        state = self._active.get(region)
        if state is not None:
            state.footprint |= 1 << offset
            self._active.move_to_end(region)
            return
        # Region trigger: predict, then start accumulating.
        footprint = self._predict(pc, region, offset)
        if footprint:
            base = region * self.region_lines
            bits = footprint & ~(1 << offset)
            index = 0
            while bits:
                if bits & 1:
                    self._issue(base + index, cycle)
                bits >>= 1
                index += 1
        self._active[region] = _ActiveRegion(pc, offset)
        if len(self._active) > self.active_limit:
            old_region, old_state = self._active.popitem(last=False)
            self._retire_region(old_region, old_state)

    def finalize(self, cycle):
        """End-of-trace hook."""
        while self._active:
            region, state = self._active.popitem(last=False)
            self._retire_region(region, state)
