"""DROPLET — data-aware indirect prefetching for graph workloads
(Basak et al. [10]).

DROPLET has a lightweight software interface describing the edge array and
the vertex-property arrays.  The hardware streams the edge array; when an
edge cache line's data **arrives from DRAM**, the vertex IDs inside it are
decoded and the corresponding vertex-property lines are prefetched.

The decisive limitation the paper exploits (Section VII-A.1): vertex
prefetches can only be generated *after* the edge data arrives plus an
address-generation delay, so on low-locality graphs (urand) the dependent
vertex prefetch is often too late.

The model receives the software descriptors through trace directives
(``droplet.edges`` / ``droplet.values``) and reads the simulated edge-array
contents through a ``resolver`` callback installed by the workload — the
stand-in for the hardware snooping the DRAM read-queue refill data.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.cache.hierarchy import L2Event
from repro.config import LINE_SIZE
from repro.prefetchers.base import Prefetcher

# resolver(edge_line_addr) -> vertex indices stored in that 64-byte line
EdgeLineResolver = Callable[[int], List[int]]


class DropletPrefetcher(Prefetcher):
    name = "droplet"

    def __init__(
        self,
        resolver: Optional[EdgeLineResolver] = None,
        edge_stream_degree: int = 2,
        generation_latency: int = 24,
    ):
        super().__init__()
        self.resolver = resolver
        self.edge_stream_degree = edge_stream_degree
        self.generation_latency = generation_latency
        self._edge_region: Optional[Tuple[int, int]] = None  # (base, size)
        self._value_regions: List[Tuple[int, int, int]] = []  # (base, size, elem)

    # -- software interface -------------------------------------------------
    def on_directive(self, op, args, cycle):
        """Software-directive hook (Table I calls)."""
        if op == "droplet.edges":
            base, size = args[0], args[1]
            self._edge_region = (base, size)
        elif op == "droplet.values":
            base, size, elem = args[0], args[1], args[2]
            self._value_regions.append((base, size, elem))
        elif op == "droplet.reset":
            self._edge_region = None
            self._value_regions.clear()

    def _in_edge_region(self, line_addr: int) -> bool:
        if self._edge_region is None:
            return False
        base, size = self._edge_region
        address = line_addr * LINE_SIZE
        return base <= address < base + size

    # -- prefetching ------------------------------------------------------
    def on_l2_event(self, line_addr, pc, cycle, event, flagged, completion=0):
        """L2 outcome hook (training input)."""
        if event == L2Event.HIT:
            return
        if not self._in_edge_region(line_addr):
            return
        # Stream ahead in the edge array.
        for step in range(1, self.edge_stream_degree + 1):
            nxt = line_addr + step
            if self._in_edge_region(nxt):
                self._issue(nxt, cycle)
        # Dependent vertex prefetches, generated once the edge data arrives.
        if self.resolver is None or not self._value_regions:
            return
        ready = max(completion, cycle) + self.generation_latency
        for vertex in self.resolver(line_addr):
            for base, size, elem in self._value_regions:
                address = base + vertex * elem
                if base <= address < base + size:
                    self._issue(address // LINE_SIZE, ready)
