"""Irregular Stream Buffer (Jain & Lin [25]).

ISB linearizes irregular miss sequences: misses observed by the same
trigger PC are assigned consecutive *structural* addresses, so temporal
correlation becomes spatial correlation in the structural space.  On a
miss, the physical address is translated to its structural address and the
next ``degree`` structural neighbours are translated back and prefetched.

Two fidelity details of the model:

* **first-assignment mapping** — a line keeps the structural slot of its
  first occurrence, so repeat occurrences see their *first* context (the
  similar-sequence confusion the paper calls out in Sections II/VIII);
* **stream confirmation** — predictions are issued only when the current
  miss lands close after the previous one in structural space
  (``0 < delta <= order_tolerance``), the model of ISB's stream predictor
  deciding the candidate belongs to an active stream.  Out-of-order
  triggers (repeats, cross-stream interference) advance the stream head
  without issuing.
"""

from __future__ import annotations

from repro.cache.hierarchy import L2Event
from repro.prefetchers.base import Prefetcher

_STREAM_SPACING = 1 << 32  # structural address space reserved per PC stream


class ISBPrefetcher(Prefetcher):
    name = "isb"

    def __init__(
        self,
        degree: int = 4,
        max_mappings: int = 1 << 20,
        order_tolerance: int = 8,
    ):
        super().__init__()
        self.degree = degree
        self.max_mappings = max_mappings
        self.order_tolerance = order_tolerance
        self._ps: dict[int, int] = {}  # physical line -> structural address
        self._sp: dict[int, int] = {}  # structural address -> physical line
        self._stream_next: dict[int, int] = {}  # pc -> next structural address
        self._last_structural: dict[int, int] = {}  # pc -> stream head
        self._stream_count = 0

    # ------------------------------------------------------------------
    def _assign(self, pc: int, line_addr: int) -> int:
        """Append ``line_addr`` at the tail of ``pc``'s stream."""
        nxt = self._stream_next.get(pc)
        if nxt is None:
            nxt = self._stream_count * _STREAM_SPACING
            self._stream_count += 1
        structural = nxt
        self._stream_next[pc] = nxt + 1
        if len(self._ps) < self.max_mappings:
            old = self._ps.get(line_addr)
            if old is not None:
                self._sp.pop(old, None)
            self._ps[line_addr] = structural
            self._sp[structural] = line_addr
        return structural

    def _issue_successors(self, structural: int, cycle: int) -> None:
        for step in range(1, self.degree + 1):
            target = self._sp.get(structural + step)
            if target is None:
                break  # the stream's recorded order ends here
            self._issue(target, cycle)

    # ------------------------------------------------------------------
    def on_l2_event(self, line_addr, pc, cycle, event, flagged, completion=0):
        """L2 outcome hook (training input)."""
        if event == L2Event.HIT:
            return  # misses and prefetch-hits both advance the stream
        structural = self._ps.get(line_addr)
        if structural is None:
            self._last_structural[pc] = self._assign(pc, line_addr)
            return
        expected = self._last_structural.get(pc)
        if expected is not None and 0 < structural - expected <= self.order_tolerance:
            self._issue_successors(structural, cycle)
        self._last_structural[pc] = structural

    @property
    def mappings(self) -> int:
        """Number of physical->structural mappings held."""
        return len(self._ps)
