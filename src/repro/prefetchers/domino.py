"""Domino temporal data prefetcher (Bakhshalipour et al. [8], cited in the
paper's related work).

Domino improves on single-miss-indexed temporal prefetchers (GHB) by
indexing the history with the *last two* misses: a pair (A, B) predicts
the miss that followed B the last time B came right after A.  The longer
key disambiguates exactly the ``9 -> {12, 20}`` confusion of the paper's
Fig 2 (b) example — at the cost of predicting only after two in-sequence
misses.
"""

from __future__ import annotations

from repro.cache.hierarchy import L2Event
from repro.prefetchers.base import Prefetcher


class DominoPrefetcher(Prefetcher):
    name = "domino"

    def __init__(self, degree: int = 4, table_entries: int = 1 << 18):
        super().__init__()
        self.degree = degree
        self.table_entries = table_entries
        # (prev_miss, miss) -> successor chain head
        self._pairs: dict[tuple, int] = {}
        # single-miss fallback chain for extending predictions
        self._next: dict[int, int] = {}
        self._last: int | None = None
        self._prev: int | None = None

    def on_l2_event(self, line_addr, pc, cycle, event, flagged, completion=0):
        """L2 outcome hook (training input)."""
        if event != L2Event.MISS:
            return
        # Train: record the pair-indexed successor of the previous pair.
        if self._prev is not None and self._last is not None:
            if len(self._pairs) < self.table_entries:
                self._pairs[(self._prev, self._last)] = line_addr
        if self._last is not None and len(self._next) < self.table_entries:
            self._next[self._last] = line_addr
        self._prev = self._last
        self._last = line_addr

        # Predict: pair-indexed head, extended along the single-miss chain.
        if self._prev is None:
            return
        successor = self._pairs.get((self._prev, line_addr))
        issued = 0
        while successor is not None and issued < self.degree:
            self._issue(successor, cycle)
            issued += 1
            successor = self._next.get(successor)
