"""MISB — Managing Irregular Stream Buffer metadata (Wu et al. [59]).

MISB is ISB with the structural mapping held **off-chip** and cached in a
small on-chip metadata cache, prefetched ahead of use.  The paper's
comparison points (Sections II and VIII):

* PC localization still confuses *similar* temporal sequences (graph
  clusters traversed in near-identical orders), capping accuracy;
* maximum prefetch degree of 8, so it cannot run a full window ahead the
  way RnR's window (up to 2048 lines) can;
* off-chip metadata lookups add traffic; misses in the on-chip metadata
  cache drop predictions (fetched for next time, not blocked on).

The model shares ISB's mapping + re-linearization training and layers the
metadata-residency gate on top: a prediction only issues if the mapping's
metadata line is on chip; a metadata miss streams the line (plus the next
one — MISB's metadata prefetch) from memory as metadata traffic.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.prefetchers.isb import ISBPrefetcher

_MAPPINGS_PER_LINE = 8  # 8-byte mapping entries in a 64-byte metadata line


class MISBPrefetcher(ISBPrefetcher):
    name = "misb"

    def __init__(
        self,
        degree: int = 8,
        metadata_cache_lines: int = 384,  # ~the paper's 49KB : 256KB L2 ratio
        metadata_base: int = 0x4000_0000,
        max_mappings: int = 1 << 20,
    ):
        super().__init__(degree=degree, max_mappings=max_mappings)
        self.metadata_cache_lines = metadata_cache_lines
        self.metadata_base = metadata_base
        # On-chip metadata cache: metadata line id -> True (LRU).
        self._meta_cache: OrderedDict[int, bool] = OrderedDict()
        self.metadata_hits = 0
        self.metadata_misses = 0

    # ------------------------------------------------------------------
    def _meta_line_of(self, structural: int) -> int:
        return structural // _MAPPINGS_PER_LINE

    def _metadata_resident(self, structural: int, cycle: int) -> bool:
        """Probe the metadata cache; on a miss, stream the line (and its
        sequential successor) on chip for future use and report False."""
        meta_line = self._meta_line_of(structural)
        if meta_line in self._meta_cache:
            self._meta_cache.move_to_end(meta_line)
            self.metadata_hits += 1
            return True
        self.metadata_misses += 1
        for fetch in (meta_line, meta_line + 1):
            if fetch in self._meta_cache:
                continue
            if self.hierarchy is not None:
                self.hierarchy.metadata_read(self.metadata_base + fetch * 64, cycle)
            self._meta_cache[fetch] = True
            if len(self._meta_cache) > self.metadata_cache_lines:
                self._meta_cache.popitem(last=False)
        return False

    # ------------------------------------------------------------------
    def _issue_successors(self, structural: int, cycle: int) -> None:
        if not self._metadata_resident(structural, cycle):
            return
        for step in range(1, self.degree + 1):
            if not self._metadata_resident(structural + step, cycle):
                break
            target = self._sp.get(structural + step)
            if target is None:
                break
            self._issue(target, cycle)
