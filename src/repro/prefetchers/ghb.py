"""Global History Buffer prefetcher (Nesbit & Smith [38]), G/AC flavour.

A circular miss-history buffer plus an index table mapping a miss address
to its most recent position in the buffer.  On a miss, the prefetcher finds
the previous occurrence of the same address and prefetches the ``degree``
misses that followed it last time.

This is the motivating strawman of Section II: when an address is followed
by different successors across interleaved streams (``9 -> 12`` vs
``9 -> 20``), the GHB picks the most recent one and mispredicts, and it
cannot separate two mixed patterns.
"""

from __future__ import annotations

from repro.cache.hierarchy import L2Event
from repro.prefetchers.base import Prefetcher


class GHBPrefetcher(Prefetcher):
    # Trains purely on L2 misses: the base no-op ``on_access`` (and
    # ``on_directive``/``finalize``) are inherited, which also keeps it
    # eligible for the columnar backend without any hook spill.
    name = "ghb"

    def __init__(self, buffer_entries: int = 4096, degree: int = 4):
        super().__init__()
        self.buffer_entries = buffer_entries
        self.degree = degree
        self._buffer: list[int] = []  # miss line addresses, logically circular
        self._head = 0  # total misses ever seen
        self._index: dict[int, int] = {}  # line addr -> last global position

    def _position_valid(self, position: int) -> bool:
        return position >= self._head - len(self._buffer)

    def _entry_at(self, position: int) -> int:
        return self._buffer[position % self.buffer_entries]

    def on_l2_event(self, line_addr, pc, cycle, event, flagged, completion=0):
        """L2 outcome hook (training input)."""
        if event != L2Event.MISS:
            return
        previous = self._index.get(line_addr)
        # Record this miss.
        if len(self._buffer) < self.buffer_entries:
            self._buffer.append(line_addr)
        else:
            self._buffer[self._head % self.buffer_entries] = line_addr
        self._index[line_addr] = self._head
        self._head += 1
        # Replay the successors of the previous occurrence.
        if previous is None or not self._position_valid(previous):
            return
        last = min(previous + self.degree, self._head - 1)
        for position in range(previous + 1, last + 1):
            if not self._position_valid(position):
                continue
            self.hierarchy.prefetch_l2(self._entry_at(position), cycle)
