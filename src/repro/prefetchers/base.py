"""Prefetcher interface.

The simulation engine drives prefetchers through four hooks:

* :meth:`Prefetcher.on_access` — every demand reference, *before* the cache
  access.  Returns True if the reference targets a software-marked
  structure (the RnR "flag added to the packet"; always False for pure
  hardware prefetchers).
* :meth:`Prefetcher.on_l2_event` — every reference the L2 actually saw
  (L1 misses), with the L2 outcome.  This is the training input; the
  prefetcher issues prefetches by calling ``hierarchy.prefetch_l2``.
* :meth:`Prefetcher.on_directive` — Table I software calls embedded in the
  trace (ignored by hardware-only prefetchers).
* :meth:`Prefetcher.finalize` — end of trace.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.hierarchy import CacheHierarchy, L2Event
from repro.stats import SimStats


class Prefetcher:
    """Base class: a prefetcher that never prefetches."""

    name = "none"

    def __init__(self) -> None:
        self.hierarchy: Optional[CacheHierarchy] = None
        self.stats: Optional[SimStats] = None
        # Telemetry collector (None unless a run enables telemetry).
        self.telemetry = None

    def attach(self, hierarchy: CacheHierarchy, stats: SimStats) -> None:
        """Bind to one core's hierarchy before simulation starts."""
        self.hierarchy = hierarchy
        self.stats = stats

    def attach_telemetry(self, collector) -> None:
        """Bind an enabled telemetry collector (engine calls this once per
        instrumented run; never called for disabled runs)."""
        self.telemetry = collector

    # -- hooks --------------------------------------------------------------
    def on_access(self, address: int, pc: int, cycle: int, is_store: bool) -> bool:
        """Demand-reference hook; returns the RnR packet flag."""
        return False

    def on_l2_event(
        self,
        line_addr: int,
        pc: int,
        cycle: int,
        event: L2Event,
        flagged: bool,
        completion: int = 0,
    ) -> None:
        """L2 outcome hook (training input)."""
        pass

    def on_directive(self, op: str, args: tuple, cycle: int) -> None:
        """Software-directive hook (Table I calls)."""
        pass

    def finalize(self, cycle: int) -> None:
        """End-of-trace hook."""
        pass

    # -- columnar-backend support (hook-spill epochs) -----------------------
    def access_hook_filter(self):
        """Narrow ``on_access`` for the vector backend's hook-spill epochs.

        The columnar backend (:mod:`repro.sim.vector`) retires L1-hit runs
        in closed form and can only afford per-entry ``on_access`` calls
        for the entries that actually need them.  A prefetcher that
        overrides ``on_access`` may support this by returning a *filter*
        callable ``filter(is_load, addrs, pcs) -> mask`` where the three
        arguments are aligned numpy views of a probe batch (bool, uint64,
        uint64) and the result is a bool mask (or None, meaning no entry
        in the batch needs its hook).  The contract:

        * for every entry **outside** the mask, ``on_access`` must have no
          observable effect and return False;
        * the predicate may depend only on state that changes through
          ``on_directive`` or ``on_l2_event`` (both only fire at batch
          boundaries under the vector backend), never through the
          ``on_access`` calls themselves.

        The default — None instead of a filter — declares "cannot narrow";
        such prefetchers fall back to the scalar loops under
        ``--engine vector`` (same statistics, no vector speedup).
        """
        return None

    # -- helpers ------------------------------------------------------------
    def _issue(self, line_addr: int, cycle: int, window: int = -1) -> bool:
        """Issue one L2 prefetch if the line address is sane."""
        if line_addr < 0:
            return False
        assert self.hierarchy is not None, "prefetcher used before attach()"
        tracer = self.hierarchy.tracer
        if tracer is not None:
            tracer.source = self.name
        return self.hierarchy.prefetch_l2(line_addr, cycle, pf_window=window)


class NullPrefetcher(Prefetcher):
    """Explicit no-prefetching baseline."""

    name = "baseline"
