"""Hardware prefetcher models.

All prefetchers follow the paper's methodology: they train on private-L2
demand traffic and fill prefetched lines into the private L2.  The set
covers every comparison point in the evaluation (next-line, Bingo, SteMS,
MISB, DROPLET) plus GHB and ISB from the motivation section and IMP from
related work, and the composite used for "RnR-Combined".
"""

from repro.prefetchers.base import NullPrefetcher, Prefetcher
from repro.prefetchers.nextline import NextLinePrefetcher
from repro.prefetchers.stream import StreamPrefetcher
from repro.prefetchers.ghb import GHBPrefetcher
from repro.prefetchers.isb import ISBPrefetcher
from repro.prefetchers.misb import MISBPrefetcher
from repro.prefetchers.bingo import BingoPrefetcher
from repro.prefetchers.bop import BestOffsetPrefetcher
from repro.prefetchers.domino import DominoPrefetcher
from repro.prefetchers.stems import SteMSPrefetcher
from repro.prefetchers.droplet import DropletPrefetcher
from repro.prefetchers.imp import IMPPrefetcher
from repro.prefetchers.composite import CompositePrefetcher
from repro.prefetchers.registry import PREFETCHERS, make_prefetcher

__all__ = [
    "BestOffsetPrefetcher",
    "BingoPrefetcher",
    "DominoPrefetcher",
    "CompositePrefetcher",
    "DropletPrefetcher",
    "GHBPrefetcher",
    "IMPPrefetcher",
    "ISBPrefetcher",
    "MISBPrefetcher",
    "NextLinePrefetcher",
    "NullPrefetcher",
    "PREFETCHERS",
    "Prefetcher",
    "SteMSPrefetcher",
    "StreamPrefetcher",
    "make_prefetcher",
]
