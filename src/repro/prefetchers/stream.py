"""Stride/stream prefetcher (Intel-SMA-style [21], [30], [51]).

A PC-indexed reference-prediction table detects constant strides with a
confidence counter and, once trained, runs a prefetch stream ``degree``
lines ahead.  This is the conventional prefetcher RnR-Combined pairs with
for the regularly-accessed arrays (Section V-D), trained only on accesses
*outside* the RnR address ranges (``flagged`` references are skipped).
"""

from __future__ import annotations

from repro.prefetchers.base import Prefetcher


class _StreamEntry:
    __slots__ = ("last_line", "stride", "confidence")

    def __init__(self, last_line: int):
        self.last_line = last_line
        self.stride = 0
        self.confidence = 0


class StreamPrefetcher(Prefetcher):
    name = "stream"

    def __init__(
        self,
        table_entries: int = 64,
        degree: int = 4,
        threshold: int = 2,
        exclude_flagged: bool = True,
    ):
        super().__init__()
        self.table_entries = table_entries
        self.degree = degree
        self.threshold = threshold
        self.exclude_flagged = exclude_flagged
        self._table: dict[int, _StreamEntry] = {}

    def _entry_for(self, pc: int, line_addr: int) -> _StreamEntry:
        entry = self._table.get(pc)
        if entry is None:
            if len(self._table) >= self.table_entries:
                # FIFO-ish eviction of the oldest PC entry.
                self._table.pop(next(iter(self._table)))
            entry = _StreamEntry(line_addr)
            self._table[pc] = entry
        return entry

    def on_l2_event(self, line_addr, pc, cycle, event, flagged, completion=0):
        """L2 outcome hook (training input)."""
        if flagged and self.exclude_flagged:
            return
        entry = self._entry_for(pc, line_addr)
        stride = line_addr - entry.last_line
        if stride != 0:
            if stride == entry.stride:
                entry.confidence = min(entry.confidence + 1, 7)
            else:
                entry.confidence = max(entry.confidence - 1, 0)
                if entry.confidence == 0:
                    entry.stride = stride
            entry.last_line = line_addr
        if entry.stride != 0 and entry.confidence >= self.threshold:
            for step in range(1, self.degree + 1):
                self._issue(line_addr + entry.stride * step, cycle)
