"""Next-line prefetcher (Smith & Hsu [50] in the paper).

On every L2 demand access, prefetch the next ``degree`` sequential lines.
The simplest regular-pattern prefetcher; great on streams, useless (and
traffic-heavy) on irregular gathers — exactly its role in Figs 6-12.
"""

from __future__ import annotations

from repro.cache.hierarchy import L2Event
from repro.prefetchers.base import Prefetcher


class NextLinePrefetcher(Prefetcher):
    name = "nextline"

    def __init__(self, degree: int = 1, on_miss_only: bool = False):
        super().__init__()
        if degree < 1:
            raise ValueError(f"degree must be >= 1, got {degree}")
        self.degree = degree
        self.on_miss_only = on_miss_only

    def on_l2_event(self, line_addr, pc, cycle, event, flagged, completion=0):
        """L2 outcome hook (training input)."""
        if self.on_miss_only and event != L2Event.MISS:
            return
        for step in range(1, self.degree + 1):
            self._issue(line_addr + step, cycle)
