"""A small TLB model.

RnR performs its own virtual-to-physical translation for metadata writes
and reads; since the metadata is contiguous and uses 4 MB pages, one TLB
lookup per page suffices (Section V-A step 6).  This module provides the
generic structure used both for that accounting and for the data-side TLB
ablation.
"""

from __future__ import annotations

from collections import OrderedDict


class Tlb:
    """Fully-associative, LRU TLB over fixed-size pages."""

    def __init__(self, entries: int = 64, page_bytes: int = 4096):
        if page_bytes <= 0 or page_bytes & (page_bytes - 1):
            raise ValueError(f"page size must be a power of two, got {page_bytes}")
        self._entries = entries
        self._page_bytes = page_bytes
        self._shift = page_bytes.bit_length() - 1
        self._mapped: OrderedDict[int, bool] = OrderedDict()
        self.hits = 0
        self.misses = 0

    @property
    def page_bytes(self) -> int:
        return self._page_bytes

    def page_of(self, address: int) -> int:
        """Page number of an address."""
        return address >> self._shift

    def access(self, address: int) -> bool:
        """Touch an address; returns True on TLB hit."""
        page = self.page_of(address)
        if page in self._mapped:
            self._mapped.move_to_end(page)
            self.hits += 1
            return True
        self.misses += 1
        self._mapped[page] = True
        if len(self._mapped) > self._entries:
            self._mapped.popitem(last=False)
        return False

    def reset(self) -> None:
        """Clear all state."""
        self._mapped.clear()
        self.hits = 0
        self.misses = 0


class PageTableWalker:
    """Latency model for a TLB miss: a fixed page-walk cost in cycles."""

    def __init__(self, walk_cycles: int = 50):
        self.walk_cycles = walk_cycles
        self.walks = 0

    def walk(self) -> int:
        """Charge one page walk; returns its latency."""
        self.walks += 1
        return self.walk_cycles
