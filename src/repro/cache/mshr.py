"""Miss-status holding registers.

A bounded set of outstanding misses.  In the trace-driven engine an MSHR
file is a heap of completion times: a new miss whose level has all MSHRs
busy must wait for the earliest outstanding fill to retire before it can
even be issued (this throttles memory-level parallelism exactly the way a
real MSHR file does).
"""

from __future__ import annotations

from heapq import heappop, heappush


class MSHRFile:
    """Bounded outstanding-miss tracker for one cache level."""

    def __init__(self, entries: int):
        if entries < 1:
            raise ValueError(f"MSHR file needs >= 1 entry, got {entries}")
        self._entries = entries
        self._completions: list[int] = []
        self.stalls = 0
        # Optional telemetry hook called only when a miss actually stalls
        # (repro.telemetry wires it; None keeps the common path untouched).
        self.on_stall = None

    @property
    def entries(self) -> int:
        """Current register-file contents."""
        return self._entries

    @property
    def occupancy(self) -> int:
        """Entries currently held."""
        return len(self._completions)

    def acquire(self, cycle: int) -> int:
        """Admit a new miss at ``cycle``; returns the (possibly delayed)
        cycle at which the miss can actually issue."""
        heap = self._completions
        while heap and heap[0] <= cycle:
            heappop(heap)
        if len(heap) >= self._entries:
            delayed = heappop(heap)
            self.stalls += 1
            if self.on_stall is not None:
                self.on_stall(cycle, delayed)
            return max(cycle, delayed)
        return cycle

    def register(self, completion: int) -> None:
        """Record the fill time of an admitted miss."""
        heappush(self._completions, completion)

    def reset(self) -> None:
        """Clear all state."""
        self._completions.clear()
        self.stalls = 0
