"""A single cache line's bookkeeping state."""

from __future__ import annotations


class CacheLine:
    """State for one resident line.

    ``arrive`` lets the trace-driven engine treat in-flight fills uniformly:
    the line is inserted at issue time but is only logically present once
    ``cycle >= arrive`` — a demand access earlier than that is an MSHR merge
    (or, for a prefetch, a *late* prefetch).
    """

    __slots__ = ("tag", "dirty", "prefetched", "pf_window", "arrive", "lru")

    def __init__(self, tag: int, arrive: int = 0):
        self.tag = tag
        self.dirty = False
        self.prefetched = False
        self.pf_window = -1
        self.arrive = arrive
        self.lru = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        flags = "".join(
            flag
            for flag, on in (("D", self.dirty), ("P", self.prefetched))
            if on
        )
        return f"CacheLine(tag={self.tag:#x}, flags={flags or '-'}, arrive={self.arrive})"
