"""Replacement policies.

The paper's ChampSim baseline uses LRU everywhere; a random policy is kept
for ablations and as the simplest correct reference in tests.
"""

from __future__ import annotations

import random
from typing import Dict, Protocol

from repro.cache.line import CacheLine


class ReplacementPolicy(Protocol):
    """Chooses a victim tag from a full set."""

    def touch(self, line: CacheLine) -> None:
        """Note a use of ``line`` (hit or fill)."""

    def victim(self, lines: Dict[int, CacheLine]) -> int:
        """Return the tag of the line to evict from a full set."""


class LRUPolicy:
    """Least-recently-used via a global monotone tick."""

    def __init__(self) -> None:
        self._tick = 0

    def touch(self, line: CacheLine) -> None:
        """Note a use of the line."""
        self._tick += 1
        line.lru = self._tick

    def victim(self, lines: Dict[int, CacheLine]) -> int:
        # Hot path: a manual scan beats min(key=...) for <=16 ways.
        """Pick the eviction victim's tag."""
        best_tag = -1
        best_lru = None
        for tag, line in lines.items():
            if best_lru is None or line.lru < best_lru:
                best_lru = line.lru
                best_tag = tag
        return best_tag


class RandomPolicy:
    """Uniform-random victim selection (seeded, for determinism)."""

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)

    def touch(self, line: CacheLine) -> None:
        """Note a use of the line."""
        pass

    def victim(self, lines: Dict[int, CacheLine]) -> int:
        """Pick the eviction victim's tag."""
        return self._rng.choice(list(lines))
