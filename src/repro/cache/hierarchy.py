"""Three-level cache hierarchy (private L1-D, private L2, shared LLC).

The hierarchy implements the paper's methodology:

* demand loads/stores traverse L1 -> L2 -> LLC -> memory, write-allocate,
  writeback, mostly-inclusive (fills populate every level; dirty evictions
  propagate downward);
* **all prefetchers fill into the private L2** (Section VII-A: "all of the
  evaluated prefetchers are prefetching data into the private L2");
* per-line prefetch bits feed usefulness accounting: a demand hit on a
  prefetched line is a *useful* prefetch; if the fill is still in flight it
  is additionally *late*; an eviction before any use reports the line to an
  optional classifier (RnR uses it for the early / out-of-window breakdown
  of Fig 11).
"""

from __future__ import annotations

from enum import Enum
from heapq import heappop, heappush
from typing import Callable, Optional

from repro.cache.cache import Cache
from repro.cache.line import CacheLine
from repro.config import LINE_SIZE, SystemConfig
from repro.mem.controller import MemoryController, RequestKind
from repro.stats import SimStats


class L2Event(Enum):
    """What a demand access did at the L2 (prefetcher training input)."""

    NONE = "none"  # L1 hit; the L2 never saw the access
    HIT = "hit"
    PREFETCH_HIT = "prefetch_hit"  # hit on a not-yet-used prefetched line
    MISS = "miss"


class AccessResult:
    """Outcome of one demand access.

    A plain __slots__ class rather than a dataclass: one is built per
    demand access, so construction cost is part of the engine hot loop.
    """

    __slots__ = ("completion", "latency", "l2_event", "line_addr")

    def __init__(
        self, completion: int, latency: int, l2_event: L2Event, line_addr: int
    ):
        self.completion = completion
        self.latency = latency
        self.l2_event = l2_event
        self.line_addr = line_addr

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"AccessResult(completion={self.completion}, latency={self.latency}, "
            f"l2_event={self.l2_event}, line_addr={self.line_addr:#x})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AccessResult):
            return NotImplemented
        return (
            self.completion == other.completion
            and self.latency == other.latency
            and self.l2_event == other.l2_event
            and self.line_addr == other.line_addr
        )


# Hoisted enum members: L2Event.X in a hot function body is two dict
# lookups per reference; these module-level bindings are one.
_EVENT_NONE = L2Event.NONE
_EVENT_HIT = L2Event.HIT
_EVENT_PREFETCH_HIT = L2Event.PREFETCH_HIT
_EVENT_MISS = L2Event.MISS


# Classifier for prefetched lines evicted before use: (line_addr, pf_window)
UnusedPrefetchClassifier = Callable[[int, int], None]


class CacheHierarchy:
    """One core's private L1/L2 plus a (possibly shared) LLC and memory."""

    def __init__(
        self,
        config: SystemConfig,
        controller: MemoryController,
        stats: SimStats,
        llc: Optional[Cache] = None,
        prefetch_fill_level: str = "l2",
        dtlb: Optional["Tlb"] = None,
        page_walk_cycles: int = 50,
    ):
        if prefetch_fill_level not in ("l2", "llc"):
            raise ValueError(
                f"prefetch_fill_level must be 'l2' or 'llc', got {prefetch_fill_level!r}"
            )
        self.config = config
        self.controller = controller
        self.stats = stats
        self.l1 = Cache(config.l1d)
        self.l2 = Cache(config.l2)
        self.llc = llc if llc is not None else Cache(config.llc)
        self.unused_prefetch_classifier: Optional[UnusedPrefetchClassifier] = None
        self.prefetch_fill_level = prefetch_fill_level
        # Optional telemetry receiver (repro.telemetry LifecycleTracer).
        # None unless a run's collector is enabled; every hook call below
        # sits off the L1-hit fast path, so disabled runs pay nothing.
        self.tracer = None
        # Optional data-side TLB (off by default: the calibrated timing
        # model folds common-case translation into the L1 latency, as
        # trace-driven ChampSim configurations typically do).
        self.dtlb = dtlb
        self.page_walk_cycles = page_walk_cycles
        self._l1_latency = config.l1d.latency
        self._l2_latency = config.l2.latency
        self._llc_latency = config.llc.latency
        # Demand hot-path state: one reusable result object (rewritten per
        # access — callers must consume it before the next demand access)
        # and prebound eviction callbacks (``self._evict_from_x`` at a call
        # site builds a fresh bound method per fill; these are built once).
        self._result = AccessResult(0, 0, _EVENT_NONE, 0)
        self._on_evict_l1 = self._evict_from_l1
        self._on_evict_l2 = self._evict_from_l2
        self._on_evict_llc = self._evict_from_llc
        # MSHR admission is inlined in _demand_miss (same arithmetic as
        # MSHRFile.acquire/register).  The heap lists are mutated in
        # place for the file's whole lifetime (reset() clears, never
        # rebinds), so hoisting them here is safe; stall accounting and
        # the telemetry hook stay on the MSHRFile and are only touched
        # on the (bounded-occupancy) stall branch.
        self._l1_mshr = self.l1.mshr
        self._l2_mshr = self.l2.mshr
        self._llc_mshr = self.llc.mshr
        self._l1_mshr_heap = self._l1_mshr._completions
        self._l2_mshr_heap = self._l2_mshr._completions
        self._llc_mshr_heap = self._llc_mshr._completions
        self._l1_mshr_entries = self._l1_mshr.entries
        self._l2_mshr_entries = self._l2_mshr.entries
        self._llc_mshr_entries = self._llc_mshr.entries
        # L2/LLC set-dict probe state for the inlined lookups (see
        # Cache.demand_probe_state for the promotion contract).
        self._l2_sets, self._l2_nsets, self._l2_dict_lru = (
            self.l2.demand_probe_state()
        )
        self._llc_sets, self._llc_nsets, self._llc_dict_lru = (
            self.llc.demand_probe_state()
        )

    # ------------------------------------------------------------------
    # Eviction handlers (dirty propagation + prefetch-bit accounting)
    # ------------------------------------------------------------------
    def _evict_from_l1(self, line_addr: int, victim: CacheLine) -> None:
        if not victim.dirty:
            return
        resident = self.l2.probe(line_addr)
        if resident is not None:
            resident.dirty = True
        else:
            self.l2.fill(line_addr, arrive=0, dirty=True, on_evict=self._on_evict_l2)

    def _evict_from_l2(self, line_addr: int, victim: CacheLine) -> None:
        if victim.prefetched:
            self.stats.l2.prefetch_evicted_unused += 1
            if self.tracer is not None:
                self.tracer.on_prefetch_evicted(line_addr, victim.pf_window)
            if self.unused_prefetch_classifier is not None:
                self.unused_prefetch_classifier(line_addr, victim.pf_window)
        if not victim.dirty:
            return
        resident = self.llc.probe(line_addr)
        if resident is not None:
            resident.dirty = True
        else:
            self.llc.fill(line_addr, arrive=0, dirty=True, on_evict=self._on_evict_llc)

    def _evict_from_llc(self, line_addr: int, victim: CacheLine) -> None:
        if victim.prefetched:
            self.stats.l2.prefetch_evicted_unused += 1
            if self.tracer is not None:
                self.tracer.on_prefetch_evicted(line_addr, victim.pf_window)
            if self.unused_prefetch_classifier is not None:
                self.unused_prefetch_classifier(line_addr, victim.pf_window)
        if victim.dirty:
            self.stats.llc.writebacks += 1
            self.stats.traffic.writeback_lines += 1
            self.controller.write(line_addr * LINE_SIZE, 0, RequestKind.WRITEBACK)

    # ------------------------------------------------------------------
    # Demand path
    # ------------------------------------------------------------------
    def load(self, address: int, cycle: int) -> AccessResult:
        """Emit one load record.

        Returns a fresh :class:`AccessResult` the caller may keep.  The
        engine hot loops bypass this wrapper and call :meth:`_demand` /
        :meth:`demand_miss` directly, which reuse one result object.
        """
        r = self._demand(address, cycle, False)
        return AccessResult(r.completion, r.latency, r.l2_event, r.line_addr)

    def store(self, address: int, cycle: int) -> AccessResult:
        """Emit one store record (fresh result object, see :meth:`load`)."""
        r = self._demand(address, cycle, True)
        return AccessResult(r.completion, r.latency, r.l2_event, r.line_addr)

    def _demand(self, address: int, cycle: int, is_store: bool) -> AccessResult:
        """One demand access; returns the hierarchy's *reusable* result.

        The returned object is overwritten by the next demand access on
        this hierarchy — consume it before then (the engine loops do).
        """
        line_addr = address // LINE_SIZE

        dtlb = self.dtlb
        if dtlb is not None and not dtlb.access(address):
            cycle += self.page_walk_cycles  # page-table walk before access

        # L1 --------------------------------------------------------------
        l1_stats = self.stats.l1d
        l1_stats.demand_accesses += 1
        l1_line = self.l1.lookup(line_addr)
        at_l1 = cycle + self._l1_latency
        if l1_line is not None:
            l1_stats.demand_hits += 1
            arrive = l1_line.arrive
            completion = arrive if arrive > at_l1 else at_l1
            if is_store:
                l1_line.dirty = True
            result = self._result
            result.completion = completion
            result.latency = completion - cycle
            result.l2_event = _EVENT_NONE
            result.line_addr = line_addr
            return result
        l1_stats.demand_misses += 1
        return self._demand_miss(line_addr, cycle, at_l1, is_store)

    def demand_miss(self, line_addr: int, cycle: int, is_store: bool) -> AccessResult:
        """Fast-path entry for engine loops that probed (and missed) L1
        inline themselves.

        The caller has already done the L1 set-dict probe (see
        :meth:`~repro.cache.cache.Cache.demand_probe_state`) and found no
        resident line; this method accounts the miss and continues down
        the L2/LLC/memory path.  Only valid when the hierarchy has no
        D-TLB (the engine checks before choosing the inlined loop).
        Returns the reusable result object, like :meth:`_demand`.
        """
        l1_stats = self.stats.l1d
        l1_stats.demand_accesses += 1
        l1_stats.demand_misses += 1
        return self._demand_miss(line_addr, cycle, cycle + self._l1_latency, is_store)

    def _demand_miss(
        self, line_addr: int, cycle: int, at_l1: int, is_store: bool
    ) -> AccessResult:
        # Hot path: every self.x.y chain that runs per access is hoisted
        # into a local up front, and the per-level MSHR admission and
        # L2/LLC set-dict probes are inlined (identical arithmetic to
        # MSHRFile.acquire/register and Cache.lookup); each exit pays
        # only for what it uses.
        stats = self.stats
        l1 = self.l1
        l1_heap = self._l1_mshr_heap
        while l1_heap and l1_heap[0] <= at_l1:
            heappop(l1_heap)
        if len(l1_heap) >= self._l1_mshr_entries:
            mshr = self._l1_mshr
            delayed = heappop(l1_heap)
            mshr.stalls += 1
            if mshr.on_stall is not None:
                mshr.on_stall(at_l1, delayed)
            l1_issue = at_l1 if at_l1 > delayed else delayed
        else:
            l1_issue = at_l1

        # L2 --------------------------------------------------------------
        l2 = self.l2
        l2_stats = stats.l2
        l2_stats.demand_accesses += 1
        if self._l2_dict_lru:
            nsets = self._l2_nsets
            l2_lines = self._l2_sets[line_addr % nsets]
            l2_tag = line_addr // nsets
            l2_line = l2_lines.get(l2_tag)
            if l2_line is not None:
                del l2_lines[l2_tag]
                l2_lines[l2_tag] = l2_line
        else:
            l2_line = l2.lookup(line_addr)
        at_l2 = l1_issue + self._l2_latency
        result = self._result
        if l2_line is not None:
            event = _EVENT_HIT
            arrive = l2_line.arrive
            completion = arrive if arrive > at_l2 else at_l2
            if l2_line.prefetched:
                # First demand touch of a prefetched line.  If the fill is
                # still in flight the demand merges with it (partial latency
                # hiding); the prefetch was still issued before the demand,
                # so it counts as useful/on-time per the paper's definition.
                stats.prefetch.useful += 1
                l2_stats.prefetch_hits += 1
                event = _EVENT_PREFETCH_HIT
                if arrive > at_l2:
                    l2_stats.late_prefetch_hits += 1
                if self.tracer is not None:
                    self.tracer.on_prefetch_hit(
                        line_addr, at_l2, arrive, l2_line.pf_window
                    )
                l2_line.prefetched = False
                l2_line.pf_window = -1
            l2_stats.demand_hits += 1
            heappush(l1_heap, completion)
            l1.fill(line_addr, completion, is_store, False, -1, self._on_evict_l1)
            result.completion = completion
            result.latency = completion - cycle
            result.l2_event = event
            result.line_addr = line_addr
            return result
        l2_stats.demand_misses += 1

        # LLC ---------------------------------------------------------------
        llc = self.llc
        llc_stats = stats.llc
        l2_heap = self._l2_mshr_heap
        while l2_heap and l2_heap[0] <= at_l2:
            heappop(l2_heap)
        if len(l2_heap) >= self._l2_mshr_entries:
            mshr = self._l2_mshr
            delayed = heappop(l2_heap)
            mshr.stalls += 1
            if mshr.on_stall is not None:
                mshr.on_stall(at_l2, delayed)
            issue = at_l2 if at_l2 > delayed else delayed
        else:
            issue = at_l2
        llc_stats.demand_accesses += 1
        if self._llc_dict_lru:
            nsets = self._llc_nsets
            llc_lines = self._llc_sets[line_addr % nsets]
            llc_tag = line_addr // nsets
            llc_line = llc_lines.get(llc_tag)
            if llc_line is not None:
                del llc_lines[llc_tag]
                llc_lines[llc_tag] = llc_line
        else:
            llc_line = llc.lookup(line_addr)
        at_llc = issue + self._llc_latency
        if llc_line is not None:
            llc_stats.demand_hits += 1
            arrive = llc_line.arrive
            completion = arrive if arrive > at_llc else at_llc
            if llc_line.prefetched:
                # LLC-destination prefetching (the Section III ablation):
                # first demand touch of an LLC-resident prefetched line.
                stats.prefetch.useful += 1
                if self.tracer is not None:
                    self.tracer.on_prefetch_hit(
                        line_addr, at_llc, arrive, llc_line.pf_window
                    )
                llc_line.prefetched = False
                llc_line.pf_window = -1
        else:
            llc_stats.demand_misses += 1
            llc_heap = self._llc_mshr_heap
            while llc_heap and llc_heap[0] <= at_llc:
                heappop(llc_heap)
            if len(llc_heap) >= self._llc_mshr_entries:
                mshr = self._llc_mshr
                delayed = heappop(llc_heap)
                mshr.stalls += 1
                if mshr.on_stall is not None:
                    mshr.on_stall(at_llc, delayed)
                mem_issue = at_llc if at_llc > delayed else delayed
            else:
                mem_issue = at_llc
            completion = self.controller.read_demand(line_addr * LINE_SIZE, mem_issue)
            stats.traffic.demand_lines += 1
            heappush(llc_heap, completion)
            llc.fill(line_addr, completion, False, False, -1, self._on_evict_llc)
        heappush(l1_heap, completion)
        heappush(l2_heap, completion)
        l2.fill(line_addr, completion, False, False, -1, self._on_evict_l2)
        l1.fill(line_addr, completion, is_store, False, -1, self._on_evict_l1)
        result.completion = completion
        result.latency = completion - cycle
        result.l2_event = _EVENT_MISS
        result.line_addr = line_addr
        return result

    # ------------------------------------------------------------------
    # Prefetch path (fills into private L2, paper Section III)
    # ------------------------------------------------------------------
    def prefetch_l2(
        self,
        line_addr: int,
        cycle: int,
        pf_window: int = -1,
        kind: RequestKind = RequestKind.PREFETCH,
    ) -> bool:
        """Issue one prefetch for ``line_addr`` into the configured fill
        level (private L2 by default, Section III; LLC for the ablation).

        Returns True if the prefetch went out (i.e. the line was not already
        resident in or in flight to the destination).
        """
        if self.prefetch_fill_level == "llc":
            return self._prefetch_llc(line_addr, cycle, pf_window, kind)
        stats = self.stats
        tracer = self.tracer
        resident = self.l2.probe(line_addr)
        if resident is not None:
            if resident.arrive > cycle and not resident.prefetched:
                # A demand miss to this line is already outstanding: the
                # prefetch was issued *later than the access arrived at
                # the L2* — the paper's "late prefetch" category.
                stats.prefetch.issued += 1
                stats.prefetch.late += 1
                if tracer is not None:
                    tracer.on_prefetch_issued(
                        line_addr, cycle, resident.arrive, pf_window, sent=False
                    )
            else:
                stats.prefetch.dropped += 1
                if tracer is not None:
                    tracer.on_prefetch_dropped(line_addr, cycle, pf_window)
            return False
        stats.prefetch.issued += 1
        llc_line = self.llc.lookup(line_addr)
        at_llc = cycle + self._llc_latency
        if llc_line is not None:
            completion = max(at_llc, llc_line.arrive)
        else:
            mem_issue = self.llc.mshr.acquire(at_llc)
            completion = self.controller.read(line_addr * LINE_SIZE, mem_issue, kind)
            stats.traffic.prefetch_lines += 1
            self.llc.mshr.register(completion)
            self.llc.fill(line_addr, arrive=completion, on_evict=self._on_evict_llc)
        if tracer is not None:
            tracer.on_prefetch_issued(line_addr, cycle, completion, pf_window, sent=True)
        self.l2.fill(
            line_addr,
            arrive=completion,
            prefetched=True,
            pf_window=pf_window,
            on_evict=self._on_evict_l2,
        )
        self.stats.l2.prefetch_fills += 1
        return True

    def _prefetch_llc(
        self, line_addr: int, cycle: int, pf_window: int, kind: RequestKind
    ) -> bool:
        """Ablation fill destination: prefetch into the shared LLC only.

        Demand still misses the L2 but hits the (warmed) LLC — the paper's
        Section III alternative, rejected there because the extra 42-cycle
        hop squanders most of the latency hiding."""
        stats = self.stats
        if self.l2.probe(line_addr) is not None:
            stats.prefetch.dropped += 1
            return False
        resident = self.llc.probe(line_addr)
        if resident is not None:
            if resident.arrive > cycle and not resident.prefetched:
                stats.prefetch.issued += 1
                stats.prefetch.late += 1
            else:
                stats.prefetch.dropped += 1
            return False
        stats.prefetch.issued += 1
        at_llc = cycle + self._llc_latency
        mem_issue = self.llc.mshr.acquire(at_llc)
        completion = self.controller.read(line_addr * LINE_SIZE, mem_issue, kind)
        stats.traffic.prefetch_lines += 1
        self.llc.mshr.register(completion)
        self.llc.fill(
            line_addr,
            arrive=completion,
            prefetched=True,
            pf_window=pf_window,
            on_evict=self._on_evict_llc,
        )
        return True

    # ------------------------------------------------------------------
    def metadata_read(self, address: int, cycle: int) -> int:
        """Stream in one line of prefetcher metadata (bypasses the caches,
        Section VII-A.7: 'the metadata are not stored in cache')."""
        completion = self.controller.read(address, cycle, RequestKind.METADATA_READ)
        self.stats.traffic.metadata_read_lines += 1
        return completion

    def metadata_write(self, address: int, cycle: int) -> None:
        """Stream out one line of prefetcher metadata (posted write)."""
        self.controller.write(address, cycle, RequestKind.METADATA_WRITE)
        self.stats.traffic.metadata_write_lines += 1

    def drain(self, cycle: int) -> None:
        """End-of-run cleanup: flush posted writes, count resident unused
        prefetches as never-used."""
        self.controller.flush_writes(cycle)
        for cache in (self.l2, self.llc):
            for line_addr, line in cache.resident_lines():
                if line.prefetched:
                    self.stats.l2.prefetch_evicted_unused += 1
                    if self.tracer is not None:
                        self.tracer.on_prefetch_evicted(line_addr, line.pf_window)
                    if self.unused_prefetch_classifier is not None:
                        self.unused_prefetch_classifier(line_addr, line.pf_window)
