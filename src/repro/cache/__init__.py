"""Cache substrate: set-associative caches with LRU replacement, MSHRs,
prefetch-bit accounting per line, and the private-L1/private-L2/shared-LLC
hierarchy of paper Table II."""

from repro.cache.line import CacheLine
from repro.cache.replacement import LRUPolicy, RandomPolicy, ReplacementPolicy
from repro.cache.mshr import MSHRFile
from repro.cache.cache import Cache
from repro.cache.hierarchy import AccessResult, CacheHierarchy, L2Event
from repro.cache.tlb import PageTableWalker, Tlb

__all__ = [
    "AccessResult",
    "Cache",
    "CacheHierarchy",
    "CacheLine",
    "L2Event",
    "LRUPolicy",
    "MSHRFile",
    "PageTableWalker",
    "RandomPolicy",
    "ReplacementPolicy",
    "Tlb",
]
