"""Columnar export of one cache level's set state (vector backend).

The dict-of-``CacheLine`` sets in :class:`repro.cache.cache.Cache` stay
the *authoritative* state — every fill, eviction, and LRU promotion
happens there.  :class:`L1Mirror` maintains a numpy shadow of just the
fields the vectorized probe needs:

* ``tags[num_sets, ways]``  — resident tag per way slot, ``-1`` = empty;
* ``arrive[num_sets, ways]`` — fill-completion cycle per slot;
* ``refs[num_sets][ways]``  — the live :class:`CacheLine` objects, so
  per-entry effects that cannot be expressed as array math (store dirty
  bits) can still be applied to the real lines.

Way slots are an arbitrary stable assignment (dict iteration order at
sync time), *not* recency order: dict-LRU promotions reorder the dict
without changing membership, so a promotion never invalidates the
mirror.  Only membership or ``arrive`` changes do, and both can only
happen through a fill or invalidation — the vector engine resyncs the
single affected set after each scalar-handled miss
(:meth:`L1Mirror.resync_set`) and rebuilds wholesale after bulk
invalidation such as ``os.switch`` (:meth:`L1Mirror.rebuild`).

Two invariants the vector engine's callers lean on:

* prefetches never touch the L1 — ``prefetch_fill_level`` is validated
  to ``l2``/``llc`` — so prefetcher hooks fired during a batch (the
  hook-spill path) cannot invalidate the mirror or a probe's hit prefix;
* the mirror shadows exactly one cache, so the multicore merge gives
  each core its own ``L1Mirror`` over its private L1; other cores only
  share the LLC/controller and can never perturb it mid-turn.
"""

from __future__ import annotations

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised via repro.sim.vector
    np = None


class L1Mirror:
    """Numpy shadow of a :class:`~repro.cache.cache.Cache`'s sets."""

    __slots__ = ("_sets", "num_sets", "ways", "tags", "arrive", "refs")

    def __init__(self, cache):
        if np is None:  # pragma: no cover - vector backend gates on numpy
            raise RuntimeError("L1Mirror requires numpy")
        sets, num_sets, dict_lru = cache.demand_probe_state()
        if not dict_lru:
            raise ValueError(
                f"{cache.config.name}: columnar mirror requires dict-LRU "
                "replacement"
            )
        self._sets = sets
        self.num_sets = num_sets
        self.ways = cache.config.ways
        self.tags = np.full((num_sets, self.ways), -1, dtype=np.int64)
        self.arrive = np.zeros((num_sets, self.ways), dtype=np.int64)
        self.refs = [[None] * self.ways for _ in range(num_sets)]
        self.rebuild()

    def rebuild(self) -> None:
        """Resync every set from the authoritative dicts."""
        self.tags.fill(-1)
        for set_idx in range(self.num_sets):
            self.resync_set(set_idx)

    def resync_set(self, set_idx: int) -> None:
        """Resync one set row after its membership (possibly) changed."""
        row_tags = self.tags[set_idx]
        row_arrive = self.arrive[set_idx]
        row_refs = self.refs[set_idx]
        slot = 0
        for tag, line in self._sets[set_idx].items():
            row_tags[slot] = tag
            row_arrive[slot] = line.arrive
            row_refs[slot] = line
            slot += 1
        while slot < self.ways:
            row_tags[slot] = -1
            row_refs[slot] = None
            slot += 1
