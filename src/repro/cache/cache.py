"""Set-associative cache structure."""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.cache.line import CacheLine
from repro.cache.mshr import MSHRFile
from repro.cache.replacement import LRUPolicy, ReplacementPolicy
from repro.config import CacheConfig

EvictionCallback = Callable[[int, CacheLine], None]


class Cache:
    """One cache level, addressed by *line address* (byte address // 64).

    Sets are dicts keyed by tag, so lookup is O(1) and victim selection is
    O(ways).  Eviction of a valid line is reported through an optional
    callback so the hierarchy can propagate dirty data and account for
    unused prefetches.
    """

    def __init__(
        self,
        config: CacheConfig,
        policy: Optional[ReplacementPolicy] = None,
    ):
        self.config = config
        self._num_sets = config.num_sets
        self._ways = config.ways
        self._sets: list[Dict[int, CacheLine]] = [dict() for _ in range(self._num_sets)]
        self._policy = policy if policy is not None else LRUPolicy()
        # Fast path for the default tick-LRU: dict insertion order *is*
        # recency order (hits and fills move the line to the end of its
        # set), so the victim is the first key — O(1) instead of an
        # O(ways) scan, with victim choice identical to the tick policy
        # (ticks strictly increase, so there are never ties to break).
        # Custom policies keep the protocol dispatch.
        self._dict_lru = type(self._policy) is LRUPolicy
        self.mshr = MSHRFile(config.mshr_entries)

    # ------------------------------------------------------------------
    def _index(self, line_addr: int) -> Tuple[int, int]:
        return line_addr % self._num_sets, line_addr // self._num_sets

    def lookup(self, line_addr: int) -> Optional[CacheLine]:
        """Return the resident line and promote it in LRU, or None."""
        num_sets = self._num_sets
        tag = line_addr // num_sets
        lines = self._sets[line_addr % num_sets]
        line = lines.get(tag)
        if line is not None:
            if self._dict_lru:
                del lines[tag]
                lines[tag] = line
            else:
                self._policy.touch(line)
        return line

    def probe(self, line_addr: int) -> Optional[CacheLine]:
        """Return the resident line without disturbing replacement state."""
        num_sets = self._num_sets
        return self._sets[line_addr % num_sets].get(line_addr // num_sets)

    def demand_probe_state(self):
        """``(sets, num_sets, dict_lru)`` for engine-side inlined probes.

        The engine hot loops inline the L1 hit check as one dict probe:
        ``sets[line_addr % num_sets].get(line_addr // num_sets)``.  The
        contract the caller must uphold when ``dict_lru`` is True: a hit
        must be promoted by deleting and re-inserting the key (insertion
        order *is* recency order, see :meth:`lookup`).  When ``dict_lru``
        is False a custom replacement policy is installed and callers
        must go through :meth:`lookup` instead.  The ``sets`` list and
        its dicts are mutated in place for the cache's whole lifetime
        (never replaced), so hoisting them across a run is safe.
        """
        return self._sets, self._num_sets, self._dict_lru

    def fill(
        self,
        line_addr: int,
        arrive: int = 0,
        dirty: bool = False,
        prefetched: bool = False,
        pf_window: int = -1,
        on_evict: Optional[EvictionCallback] = None,
    ) -> CacheLine:
        """Insert a line, evicting a victim if the set is full.

        Returns the inserted line. If the line is already resident, its
        metadata is refreshed instead (an MSHR-merge fill).
        """
        num_sets = self._num_sets
        set_idx = line_addr % num_sets
        tag = line_addr // num_sets
        lines = self._sets[set_idx]
        dict_lru = self._dict_lru
        line = lines.get(tag)
        if line is None:
            if len(lines) >= self._ways:
                victim_tag = (
                    next(iter(lines)) if dict_lru else self._policy.victim(lines)
                )
                victim = lines.pop(victim_tag)
                if on_evict is not None:
                    on_evict(victim_tag * num_sets + set_idx, victim)
                # Recycle the victim object: a steady-state fill would
                # otherwise allocate one CacheLine per miss (the single
                # biggest allocation source in the demand hot loop).  No
                # eviction handler retains the object — they only read
                # its fields — so resetting it here is equivalent to
                # constructing a fresh line.
                line = victim
                line.tag = tag
                line.dirty = False
                line.prefetched = False
                line.pf_window = -1
                line.arrive = arrive
                line.lru = 0
            else:
                line = CacheLine(tag, arrive)
            lines[tag] = line
        else:
            if arrive < line.arrive:
                line.arrive = arrive
            if dict_lru:
                del lines[tag]
                lines[tag] = line
        line.dirty = line.dirty or dirty
        line.prefetched = prefetched
        line.pf_window = pf_window
        if not dict_lru:
            self._policy.touch(line)
        return line

    def invalidate(self, line_addr: int) -> Optional[CacheLine]:
        """Drop a line (no writeback); returns it if it was resident."""
        set_idx, tag = self._index(line_addr)
        return self._sets[set_idx].pop(tag, None)

    def clear(self) -> None:
        """Drop everything."""
        for lines in self._sets:
            lines.clear()
        self.mshr.reset()

    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        """Entries currently held."""
        return sum(len(lines) for lines in self._sets)

    def resident_lines(self):
        """Yield (line_addr, CacheLine) for every resident line."""
        for set_idx, lines in enumerate(self._sets):
            for tag, line in lines.items():
                yield tag * self._num_sets + set_idx, line
