"""Set-associative cache structure."""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.cache.line import CacheLine
from repro.cache.mshr import MSHRFile
from repro.cache.replacement import LRUPolicy, ReplacementPolicy
from repro.config import CacheConfig

EvictionCallback = Callable[[int, CacheLine], None]


class Cache:
    """One cache level, addressed by *line address* (byte address // 64).

    Sets are dicts keyed by tag, so lookup is O(1) and victim selection is
    O(ways).  Eviction of a valid line is reported through an optional
    callback so the hierarchy can propagate dirty data and account for
    unused prefetches.
    """

    def __init__(
        self,
        config: CacheConfig,
        policy: Optional[ReplacementPolicy] = None,
    ):
        self.config = config
        self._num_sets = config.num_sets
        self._ways = config.ways
        self._sets: list[Dict[int, CacheLine]] = [dict() for _ in range(self._num_sets)]
        self._policy = policy if policy is not None else LRUPolicy()
        self.mshr = MSHRFile(config.mshr_entries)

    # ------------------------------------------------------------------
    def _index(self, line_addr: int) -> Tuple[int, int]:
        return line_addr % self._num_sets, line_addr // self._num_sets

    def lookup(self, line_addr: int) -> Optional[CacheLine]:
        """Return the resident line and promote it in LRU, or None."""
        num_sets = self._num_sets
        line = self._sets[line_addr % num_sets].get(line_addr // num_sets)
        if line is not None:
            self._policy.touch(line)
        return line

    def probe(self, line_addr: int) -> Optional[CacheLine]:
        """Return the resident line without disturbing replacement state."""
        num_sets = self._num_sets
        return self._sets[line_addr % num_sets].get(line_addr // num_sets)

    def fill(
        self,
        line_addr: int,
        arrive: int = 0,
        dirty: bool = False,
        prefetched: bool = False,
        pf_window: int = -1,
        on_evict: Optional[EvictionCallback] = None,
    ) -> CacheLine:
        """Insert a line, evicting a victim if the set is full.

        Returns the inserted line. If the line is already resident, its
        metadata is refreshed instead (an MSHR-merge fill).
        """
        set_idx, tag = self._index(line_addr)
        lines = self._sets[set_idx]
        line = lines.get(tag)
        if line is None:
            if len(lines) >= self._ways:
                victim_tag = self._policy.victim(lines)
                victim = lines.pop(victim_tag)
                if on_evict is not None:
                    victim_addr = victim_tag * self._num_sets + set_idx
                    on_evict(victim_addr, victim)
            line = CacheLine(tag, arrive)
            lines[tag] = line
        else:
            line.arrive = min(line.arrive, arrive)
        line.dirty = line.dirty or dirty
        line.prefetched = prefetched
        line.pf_window = pf_window
        self._policy.touch(line)
        return line

    def invalidate(self, line_addr: int) -> Optional[CacheLine]:
        """Drop a line (no writeback); returns it if it was resident."""
        set_idx, tag = self._index(line_addr)
        return self._sets[set_idx].pop(tag, None)

    def clear(self) -> None:
        """Drop everything."""
        for lines in self._sets:
            lines.clear()
        self.mshr.reset()

    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        """Entries currently held."""
        return sum(len(lines) for lines in self._sets)

    def resident_lines(self):
        """Yield (line_addr, CacheLine) for every resident line."""
        for set_idx, lines in enumerate(self._sets):
            for tag, line in lines.items():
                yield tag * self._num_sets + set_idx, line
