"""repro — a reproduction of *RnR: A Software-Assisted Record-and-Replay
Hardware Prefetcher* (Zhang, Zeng, Shalf, Guo; MICRO 2020).

Top-level convenience imports cover the common workflow::

    from repro import SystemConfig, SimulationEngine, make_prefetcher
    from repro.workloads import PageRankWorkload
    from repro.graphs import datasets

    config = SystemConfig.scaled()
    workload = PageRankWorkload(datasets.make_graph("amazon"), iterations=3)
    trace = workload.build_trace(window_size=32)
    stats = SimulationEngine(config, make_prefetcher("rnr")).run(trace)
"""

from repro.config import LINE_SIZE, SystemConfig
from repro.stats import SimStats
from repro.sim.engine import SimulationEngine
from repro.sim.multicore import MulticoreEngine
from repro.prefetchers.registry import PREFETCHERS, make_prefetcher

__version__ = "1.0.0"

__all__ = [
    "LINE_SIZE",
    "MulticoreEngine",
    "PREFETCHERS",
    "SimStats",
    "SimulationEngine",
    "SystemConfig",
    "make_prefetcher",
    "__version__",
]
