"""Baseline system configuration (paper Table II) and scaling helpers.

The paper models an Intel i7-6700-like 4-core system in ChampSim:

==========  ==============================================================
Processors  4 cores, 4 GHz, 4-wide OoO, 256-entry ROB, 64-entry LSQ
L1-D/I      private, 64 KB, 8-way, 8-entry MSHR, 4-cycle latency
L2          private, 256 KB, 8-way, 16-entry MSHR, 12-cycle latency
LLC         shared, 8 MB, 16-way, 128-entry MSHR, 42-cycle latency
Controller  FCFS, read queue 64, write queue 32, drain hi/lo = 75 %/25 %
Memory      DDR4-2400, 1 channel, 1 rank, 16 banks, tCL=tRCD=tRP=17
==========  ==============================================================

Python cannot simulate 500M-instruction traces, so experiments run on
*scaled* systems: :func:`SystemConfig.scaled` shrinks every capacity
(cache sizes, queue sizes) by a factor while keeping latencies,
associativities, and timing ratios intact.  Workload inputs are shrunk by
the same factor so the working-set : LLC ratio matches the paper's regime.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

LINE_SIZE = 64
"""Cache line size in bytes (fixed, as in ChampSim)."""


@dataclass(frozen=True)
class CoreConfig:
    """Out-of-order core parameters (trace-driven approximation)."""

    freq_ghz: float = 4.0
    width: int = 4
    rob_entries: int = 256
    lsq_entries: int = 64
    issue_queue: int = 16


@dataclass(frozen=True)
class CacheConfig:
    """One cache level."""

    name: str
    size_bytes: int
    ways: int
    mshr_entries: int
    latency: int  # access latency in core cycles
    line_size: int = LINE_SIZE

    @property
    def num_sets(self) -> int:
        """Number of cache sets."""
        return max(1, self.size_bytes // (self.ways * self.line_size))

    @property
    def num_lines(self) -> int:
        """Total line capacity."""
        return self.size_bytes // self.line_size

    def scaled(self, factor: int) -> "CacheConfig":
        """Shrink capacity by ``factor``, keeping ways/latency fixed."""
        size = max(self.ways * self.line_size, self.size_bytes // factor)
        mshr = max(4, self.mshr_entries)
        return replace(self, size_bytes=size, mshr_entries=mshr)


@dataclass(frozen=True)
class DramTimingConfig:
    """DDR4 timing (in memory-bus cycles, from Micron MT40A2G4-2400)."""

    freq_mhz: int = 1200  # bus clock; DDR4-2400 data rate
    tCL: int = 17
    tRCD: int = 17
    tRP: int = 17
    tBURST: int = 4  # BL8 on a DDR bus
    tRTW: int = 8  # read-to-write bus turnaround
    tWTR: int = 12  # write-to-read bus turnaround
    row_bytes: int = 8192

    def core_cycles(self, mem_cycles: float, core_freq_ghz: float) -> int:
        """Convert memory-bus cycles to core cycles."""
        return int(round(mem_cycles * (core_freq_ghz * 1000.0) / self.freq_mhz))


@dataclass(frozen=True)
class MemoryConfig:
    """Memory controller + DRAM organisation."""

    channels: int = 1
    ranks: int = 1
    banks: int = 16
    read_queue: int = 64
    write_queue: int = 32
    drain_high: float = 0.75
    drain_low: float = 0.25
    size_bytes: int = 4 << 30
    timing: DramTimingConfig = DramTimingConfig()

    def scaled(self, factor: int) -> "MemoryConfig":
        rq = max(8, self.read_queue)
        wq = max(4, self.write_queue)
        return replace(self, read_queue=rq, write_queue=wq)


@dataclass(frozen=True)
class SystemConfig:
    """Full Table II system."""

    cores: int = 4
    core: CoreConfig = CoreConfig()
    l1d: CacheConfig = CacheConfig("L1D", 64 << 10, 8, 8, 4)
    l2: CacheConfig = CacheConfig("L2", 256 << 10, 8, 16, 12)
    llc: CacheConfig = CacheConfig("LLC", 8 << 20, 16, 128, 42)
    memory: MemoryConfig = MemoryConfig()

    @classmethod
    def baseline(cls) -> "SystemConfig":
        """The unscaled Table II configuration."""
        return cls()

    @classmethod
    def scaled(cls, factor: int = 64, cores: int = 1) -> "SystemConfig":
        """A laptop-scale system: capacities / ``factor``, same ratios.

        The default factor of 64 turns 64 KB/256 KB/8 MB caches into
        1 KB/4 KB/128 KB so that graphs of a few thousand vertices exercise
        the same miss regimes as millions of vertices did on the paper's
        full-size hierarchy.
        """
        if factor < 1:
            raise ValueError(f"scale factor must be >= 1, got {factor}")
        base = cls()
        return cls(
            cores=cores,
            core=base.core,
            l1d=base.l1d.scaled(factor),
            l2=base.l2.scaled(factor),
            llc=base.llc.scaled(factor),
            memory=base.memory.scaled(factor),
        )

    @classmethod
    def experiment(cls, cores: int = 1) -> "SystemConfig":
        """The preset the benchmark harness uses.

        Capacities are scaled non-uniformly: DRAM latency does not scale
        down with the caches, so the L2 (which bounds how far ahead RnR may
        run) is kept larger relative to the L1/LLC than a uniform shrink
        would give — L1 2 KB, L2 8 KB (128 lines), LLC 64 KB.  Workload
        inputs in :mod:`repro.graphs.datasets` / :mod:`repro.sparse.datasets`
        are sized so their working sets exceed this LLC by the same margin
        the paper's inputs exceeded 8 MB.
        """
        base = cls()
        return cls(
            cores=cores,
            core=base.core,
            l1d=CacheConfig("L1D", 2 << 10, 8, 8, 4),
            l2=CacheConfig("L2", 16 << 10, 8, 16, 12),
            llc=CacheConfig("LLC", 64 << 10, 16, 32, 42),
            memory=base.memory.scaled(64),
        )

    @classmethod
    def tiny(cls, cores: int = 1) -> "SystemConfig":
        """A very small system for fast unit tests."""
        base = cls()
        return cls(
            cores=cores,
            core=base.core,
            l1d=CacheConfig("L1D", 512, 8, 4, 4),
            l2=CacheConfig("L2", 2 << 10, 8, 8, 12),
            llc=CacheConfig("LLC", 8 << 10, 16, 16, 42),
            memory=base.memory.scaled(64),
        )

    def describe(self) -> str:
        """Render the configuration as a Table II-style text block."""
        mem = self.memory
        timing = mem.timing
        rows = [
            ("Processors",
             f"{self.cores} cores, {self.core.freq_ghz:g} GHz, "
             f"{self.core.width}-wide OoO, {self.core.rob_entries}-entry ROB, "
             f"{self.core.lsq_entries}-entry LSQ"),
            ("L1-D",
             f"private, {self.l1d.size_bytes // 1024} KB, {self.l1d.ways}-way, "
             f"{self.l1d.mshr_entries}-entry MSHR, delay = {self.l1d.latency} cycles"),
            ("L2",
             f"private, {self.l2.size_bytes // 1024} KB, {self.l2.ways}-way, "
             f"{self.l2.mshr_entries}-entry MSHR, delay = {self.l2.latency} cycles"),
            ("LLC",
             f"shared, {self.llc.size_bytes // 1024} KB, {self.llc.ways}-way, "
             f"{self.llc.mshr_entries}-entry MSHR, delay = {self.llc.latency} cycles"),
            ("Controller",
             f"FCFS, read queue = {mem.read_queue}, write queue = {mem.write_queue}, "
             f"drain high/low = {mem.drain_high:.0%}/{mem.drain_low:.0%}"),
            ("Memory",
             f"{mem.channels} channel, {mem.ranks} rank, {mem.banks} banks, "
             f"DDR @ {2 * timing.freq_mhz} MT/s, "
             f"tCL = tRCD = tRP = {timing.tCL} cycles"),
        ]
        width = max(len(name) for name, _ in rows)
        return "\n".join(f"{name.ljust(width)}  {value}" for name, value in rows)

    @property
    def memory_latency_core_cycles(self) -> int:
        """Idle-system row-hit DRAM latency seen from the LLC, in core cycles."""
        t = self.memory.timing
        return t.core_cycles(t.tCL + t.tBURST, self.core.freq_ghz)
