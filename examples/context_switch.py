#!/usr/bin/env python3
"""OS support: RnR across a context switch (paper Section IV-C).

The paper's argument: conventional hardware prefetchers lose their
training on a context switch, but RnR only needs its 86.5 B of register
state saved/restored — the recorded sequence lives in ordinary memory.
This example deschedules the process mid-replay with full cache
pollution, and compares RnR (which resumes replaying) against a GHB
temporal prefetcher (whose history is what it is — but whose *cache* was
also wiped, forcing it to find its place again).

Run:  python examples/context_switch.py
"""

import random

from repro import SimulationEngine, SystemConfig, make_prefetcher
from repro.rnr.api import RnRInterface
from repro.sim import metrics
from repro.sim.os_model import emit_context_switch
from repro.trace import AddressSpace, TraceBuilder


def build_trace(with_rnr: bool, with_switch: bool):
    rng = random.Random(13)
    space = AddressSpace()
    data = space.alloc("data", 16384, 8)
    indices = [rng.randrange(16384) for _ in range(2500)]
    builder = TraceBuilder()
    rnr = RnRInterface(builder, space, default_window=16)
    if with_rnr:
        rnr.init()
        rnr.addr_base.set(data)
        rnr.addr_base.enable(data)
    for iteration in range(3):
        if with_rnr:
            if iteration == 0:
                rnr.prefetch_state.start()
            else:
                rnr.prefetch_state.replay()
        builder.iter_begin(iteration)
        for position, index in enumerate(indices):
            builder.work(5)
            builder.load(data.addr(index), pc=0x100)
            if with_switch and iteration == 1 and position == len(indices) // 2:
                # Descheduled mid-replay: full cache pollution, 100k cycles.
                emit_context_switch(
                    builder, rnr if with_rnr else None,
                    away_cycles=100_000, pollution=1.0,
                )
        builder.iter_end(iteration)
    if with_rnr:
        rnr.prefetch_state.end()
        rnr.end()
    return builder.build()


def main():
    config = SystemConfig.experiment()
    print("RnR vs GHB across a mid-replay context switch (full pollution)\n")
    for name in ("rnr", "ghb"):
        with_rnr = name == "rnr"
        clean = SimulationEngine(config, make_prefetcher(name)).run(
            build_trace(with_rnr, with_switch=False)
        )
        switched = SimulationEngine(config, make_prefetcher(name)).run(
            build_trace(with_rnr, with_switch=True)
        )
        penalty = switched.cycles - clean.cycles - 100_000  # beyond time away
        print(f"{name}:")
        print(f"  accuracy (no switch / switch): "
              f"{metrics.accuracy(clean):.1%} / {metrics.accuracy(switched):.1%}")
        print(f"  warm-up penalty beyond time away: {max(0, penalty)} cycles")
    print("\nRnR resumes the replay from its saved 86.5 B of state; the only "
          "cost is re-warming the caches — the paper's Section IV-C claim.")


if __name__ == "__main__":
    main()
