#!/usr/bin/env python3
"""Window-size tuning (a miniature of the paper's Fig 14).

Sweeps the RnR window size on Hyper-ANF and prints the speedup / accuracy
/ storage trade-off: small windows limit how far ahead replay can run;
windows near half the L2 thrash it with unused prefetches.

Run:  python examples/window_tuning.py
"""

from repro import SimulationEngine, SystemConfig, make_prefetcher
from repro.experiments.tables import format_table
from repro.graphs import datasets
from repro.sim import metrics
from repro.workloads import HyperAnfWorkload

WINDOWS = (4, 8, 16, 32, 64, 128)


def main():
    graph = datasets.make_graph("urand", "test")
    config = SystemConfig.experiment()
    l2_lines = config.l2.num_lines
    print(f"Hyper-ANF window sweep (L2 = {l2_lines} lines; "
          f"the paper caps windows at half the L2)")

    baseline = None
    rows = []
    for window in WINDOWS:
        workload = HyperAnfWorkload(graph, iterations=3, window_size=window)
        if baseline is None:
            baseline = SimulationEngine(config).run(workload.build_trace(rnr=False))
        stats = SimulationEngine(config, make_prefetcher("rnr")).run(
            workload.build_trace(rnr=True)
        )
        timeliness = metrics.timeliness_breakdown(stats)
        rows.append(
            (
                window,
                metrics.amortized_speedup(baseline, stats),
                100 * metrics.accuracy(stats),
                100 * timeliness["early"],
                100
                * metrics.storage_overhead(
                    stats.rnr.storage_bytes(), workload.input_bytes
                ),
            )
        )
    print()
    print(
        format_table(
            ("window", "speedup", "accuracy %", "early %", "storage %"),
            rows,
        )
    )


if __name__ == "__main__":
    main()
