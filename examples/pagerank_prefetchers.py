#!/usr/bin/env python3
"""Compare prefetchers on PageRank (a miniature of the paper's Fig 6/8/9).

Runs the Ligra-style pull PageRank over a synthetic uniform-random graph
(the paper's hardest input class) under every prefetcher in the registry
and prints speedup, coverage, and accuracy per prefetcher.

Run:  python examples/pagerank_prefetchers.py [graph]
      graph in {urand, amazon, com-orkut, roadUSA}; default urand
"""

import sys

from repro import SimulationEngine, SystemConfig, make_prefetcher
from repro.experiments.tables import format_table
from repro.graphs import datasets
from repro.sim import metrics
from repro.workloads import PageRankWorkload

PREFETCHERS = ("nextline", "bingo", "stems", "misb", "droplet", "rnr", "rnr-combined")


def main():
    graph_name = sys.argv[1] if len(sys.argv) > 1 else "urand"
    graph = datasets.make_graph(graph_name, "test")
    print(f"PageRank on {graph_name}: {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges (locality {graph.locality_score():.3f})")

    config = SystemConfig.experiment()
    workload = PageRankWorkload(graph, iterations=3, window_size=16)
    plain_trace = workload.build_trace(rnr=False)
    rnr_trace = workload.build_trace(rnr=True)

    baseline = SimulationEngine(config).run(plain_trace)
    print(f"baseline: IPC {baseline.ipc:.3f}, L2 MPKI {baseline.l2_mpki:.1f}")

    rows = []
    for name in PREFETCHERS:
        prefetcher = make_prefetcher(name)
        if name == "droplet":
            prefetcher.resolver = workload.edge_line_values
        trace = rnr_trace if "rnr" in name else plain_trace
        stats = SimulationEngine(config, prefetcher).run(trace)
        rows.append(
            (
                name,
                metrics.amortized_speedup(baseline, stats),
                100 * metrics.coverage(baseline, stats),
                100 * metrics.accuracy(stats),
                100 * metrics.additional_traffic_ratio(baseline, stats),
            )
        )
    print()
    print(
        format_table(
            ("prefetcher", "speedup", "coverage %", "accuracy %", "extra traffic %"),
            rows,
        )
    )
    print(f"\nPageRank converged: final L1 error {workload.error_history[-1]:.2e}")


if __name__ == "__main__":
    main()
