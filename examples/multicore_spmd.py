#!/usr/bin/env python3
"""4-core SPMD PageRank (paper Sections V-E and VI).

Partitions a graph four ways (the METIS-substitute partitioner), builds
one annotated trace per worker, and runs them on the lockstep multicore
engine — private L1/L2 and per-core RnR state, shared LLC and memory
controller — reporting per-core and aggregate results.

Run:  python examples/multicore_spmd.py
"""

from repro import MulticoreEngine, SystemConfig, make_prefetcher
from repro.graphs import datasets
from repro.graphs.partition import edge_cut, partition_bfs
from repro.workloads.spmd import build_spmd_traces

CORES = 4


def main():
    graph = datasets.make_graph("amazon", "test")
    assignment = partition_bfs(graph, CORES)
    cut = edge_cut(graph, assignment)
    print(f"amazon graph: {graph.num_vertices} vertices, {graph.num_edges} edges")
    print(f"4-way partition edge cut: {cut} ({cut / graph.num_edges:.1%})")

    config = SystemConfig.experiment(cores=CORES)

    baseline_engine = MulticoreEngine(config)
    baseline_engine.run(
        build_spmd_traces(graph, CORES, iterations=3, window_size=16,
                          rnr=False, assignment=assignment)
    )
    baseline = baseline_engine.aggregate()

    rnr_engine = MulticoreEngine(
        config, prefetchers=[make_prefetcher("rnr-combined") for _ in range(CORES)]
    )
    rnr_engine.run(
        build_spmd_traces(graph, CORES, iterations=3, window_size=16,
                          rnr=True, assignment=assignment)
    )
    rnr = rnr_engine.aggregate()

    print("\nper-core cycles (baseline -> rnr-combined):")
    for core in range(CORES):
        before = baseline_engine.engines[core].stats.cycles
        after = rnr_engine.engines[core].stats.cycles
        print(f"  core {core}: {before:>10d} -> {after:>10d}")
    print(f"\naggregate speedup: {baseline.cycles / rnr.cycles:.2f}x "
          f"(accuracy {rnr.prefetch.accuracy:.1%})")
    print("note: at this scaled-down cache/bandwidth ratio the single DDR4 "
          "channel saturates with 4 cores — see EXPERIMENTS.md.")


if __name__ == "__main__":
    main()
