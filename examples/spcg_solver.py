#!/usr/bin/env python3
"""spCG: a real conjugate-gradient solve, traced and prefetched.

The workload genuinely solves A x = b (residual history printed); the
memory trace of the same computation runs through the simulator with and
without RnR, showing how a fixed sparsity pattern lets RnR record the
``p[col[j]]`` gather sequence once and replay it every iteration.

Run:  python examples/spcg_solver.py [matrix]
      matrix in {atmosmodj, bbmat, nlpkkt80, pdb1HYS}; default nlpkkt80
"""

import sys

import numpy as np

from repro import SimulationEngine, SystemConfig, make_prefetcher
from repro.sim import metrics
from repro.sparse import datasets
from repro.workloads import SpCGWorkload


def main():
    matrix_name = sys.argv[1] if len(sys.argv) > 1 else "nlpkkt80"
    matrix = datasets.make_matrix(matrix_name, "test")
    print(f"spCG on {matrix_name}: {matrix.num_rows} rows, {matrix.nnz} non-zeros")

    config = SystemConfig.experiment()
    workload = SpCGWorkload(matrix, iterations=4, window_size=16)

    baseline = SimulationEngine(config).run(workload.build_trace(rnr=False))
    rnr_stats = SimulationEngine(config, make_prefetcher("rnr-combined")).run(
        workload.build_trace(rnr=True)
    )

    print("\nCG residuals (the solver really runs):")
    for i, residual in enumerate(workload.residual_history):
        print(f"  iter {i}: {residual:.3e}")
    check = np.linalg.norm(matrix.spmv(workload.solution) - workload.rhs)
    print(f"  ||A x - b|| after 4 iterations: {check:.3e}")

    print("\nMemory-system results:")
    print(f"  baseline IPC:         {baseline.ipc:.3f}")
    print(f"  RnR-Combined IPC:     {rnr_stats.ipc:.3f}")
    print(f"  replay speedup:       {metrics.replay_speedup(baseline, rnr_stats):.2f}x")
    print(f"  accuracy:             {metrics.accuracy(rnr_stats):.1%}")
    print(f"  metadata storage:     "
          f"{metrics.storage_overhead(rnr_stats.rnr.storage_bytes(), workload.input_bytes):.1%} of input")


if __name__ == "__main__":
    main()
