#!/usr/bin/env python3
"""Tracing *your own* algorithm with instrumented arrays.

The built-in workloads hand-emit their traces; for new algorithms the
Tracer does it automatically: wrap arrays, index them normally, and every
element access becomes a trace record.  Here a tiny sparse
triangular-solve-like sweep (an algorithm the paper never evaluated) gets
RnR annotations in four lines.

Run:  python examples/instrumented_tracing.py
"""

import numpy as np

from repro import SimulationEngine, SystemConfig, make_prefetcher
from repro.sim import metrics
from repro.trace.instrument import Tracer

N = 3000
NNZ_PER_ROW = 6


def build(with_rnr: bool):
    rng = np.random.default_rng(7)
    # Lower-triangular dependency pattern: row i reads NNZ earlier xs.
    deps = [rng.integers(0, max(1, i), size=min(i, NNZ_PER_ROW)) for i in range(N)]

    tracer = Tracer(rnr_window=16)
    x = tracer.array("x", N, pc=0x10)
    b = tracer.array("b", N, pc=0x14, fill=1.0)
    if with_rnr:
        tracer.rnr.init()
        tracer.rnr.addr_base.set(x.region)
        tracer.rnr.addr_base.enable(x.region)
    for iteration in range(3):  # e.g. iterative refinement sweeps
        with tracer.iteration(iteration):
            for i in range(N):
                tracer.work(2)
                acc = b[i]
                for j in deps[i]:
                    tracer.work(2)
                    acc -= 0.1 * x[int(j)]  # irregular dependency gather
                x[i] = acc
    if with_rnr:
        tracer.rnr.prefetch_state.end()
        tracer.rnr.end()
    return tracer.build()


def main():
    config = SystemConfig.experiment()
    baseline = SimulationEngine(config).run(build(False))
    rnr = SimulationEngine(config, make_prefetcher("rnr")).run(build(True))
    print("Instrumented triangular sweep (a workload the paper never ran):")
    print(f"  trace length:        {baseline.instructions} instructions")
    print(f"  baseline IPC:        {baseline.ipc:.3f}")
    print(f"  RnR replay speedup:  {metrics.replay_speedup(baseline, rnr):.2f}x")
    print(f"  RnR accuracy:        {metrics.accuracy(rnr):.1%}")
    print("\nAny repeating-irregular algorithm gets the same treatment: wrap "
          "arrays in tracer.array(), mark the gathered one, record + replay.")


if __name__ == "__main__":
    main()
