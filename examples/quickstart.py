#!/usr/bin/env python3
"""Quickstart: annotate a repeating irregular loop with the RnR API.

This is the library's "hello world": a program gathers through an index
array in the same irregular order every iteration.  We mark the gathered
array as an RnR spatial region, record the miss sequence on iteration 0,
and replay it as prefetches on iterations 1+, then compare against the
no-prefetcher baseline.

Run:  python examples/quickstart.py
"""

import random

from repro import SimulationEngine, SystemConfig, make_prefetcher
from repro.rnr.api import RnRInterface
from repro.sim import metrics
from repro.trace import AddressSpace, TraceBuilder

ITERATIONS = 3
ARRAY_ELEMS = 40_960  # 320 KB of 8-byte elements: far beyond the LLC
ACCESSES_PER_ITER = 6_000


def build_trace(with_rnr: bool):
    """Emit the program's memory trace, optionally with RnR annotations."""
    rng = random.Random(42)
    space = AddressSpace()
    data = space.alloc("data", ARRAY_ELEMS, 8)
    indices = [rng.randrange(ARRAY_ELEMS) for _ in range(ACCESSES_PER_ITER)]

    builder = TraceBuilder()
    rnr = RnRInterface(builder, space, default_window=16)
    if with_rnr:
        rnr.init()                     # allocate the metadata tables
        rnr.addr_base.set(data)        # declare the irregular structure
        rnr.addr_base.enable(data)

    for iteration in range(ITERATIONS):
        if with_rnr:
            if iteration == 0:
                rnr.prefetch_state.start()    # record the first pass
            else:
                rnr.prefetch_state.replay()   # replay on every repeat
        builder.iter_begin(iteration)
        for index in indices:                 # the repeating gather
            builder.work(6)
            builder.load(data.addr(index), pc=0x100)
        builder.iter_end(iteration)

    if with_rnr:
        rnr.prefetch_state.end()
        rnr.end()
    return builder.build()


def main():
    config = SystemConfig.experiment()

    baseline = SimulationEngine(config).run(build_trace(with_rnr=False))
    rnr_stats = SimulationEngine(config, make_prefetcher("rnr")).run(
        build_trace(with_rnr=True)
    )

    timeliness = metrics.timeliness_breakdown(rnr_stats)
    print("RnR quickstart — repeating irregular gather")
    print(f"  baseline IPC:          {baseline.ipc:.3f}")
    print(f"  RnR IPC:               {rnr_stats.ipc:.3f}")
    print(f"  replay-phase speedup:  {metrics.replay_speedup(baseline, rnr_stats):.2f}x")
    print(f"  100-iter amortized:    {metrics.amortized_speedup(baseline, rnr_stats):.2f}x")
    print(f"  prefetch accuracy:     {metrics.accuracy(rnr_stats):.1%}")
    print(f"  miss coverage:         {metrics.coverage(baseline, rnr_stats):.1%}")
    print(f"  on-time prefetches:    {timeliness['on_time']:.1%}")
    print(f"  metadata stored:       {rnr_stats.rnr.storage_bytes()} bytes")


if __name__ == "__main__":
    main()
