#!/usr/bin/env python3
"""Extending the library: write and evaluate your own prefetcher.

The prefetcher interface is four hooks (see repro.prefetchers.base).  This
example implements a tiny *Markov* prefetcher — it remembers, per miss
address, the miss that followed it last time, and prefetches that one
successor — then races it against next-line and RnR on PageRank.

Run:  python examples/custom_prefetcher.py
"""

from repro import SimulationEngine, SystemConfig, make_prefetcher
from repro.cache.hierarchy import L2Event
from repro.experiments.tables import format_table
from repro.graphs import datasets
from repro.prefetchers.base import Prefetcher
from repro.sim import metrics
from repro.workloads import PageRankWorkload


class MarkovPrefetcher(Prefetcher):
    """1-successor Markov table over L2 miss lines."""

    name = "markov"

    def __init__(self, table_entries: int = 1 << 16):
        super().__init__()
        self.table_entries = table_entries
        self._successor: dict[int, int] = {}
        self._last_miss: int | None = None

    def on_l2_event(self, line_addr, pc, cycle, event, flagged, completion=0):
        if event is not L2Event.MISS:
            return
        if self._last_miss is not None and len(self._successor) < self.table_entries:
            self._successor[self._last_miss] = line_addr
        self._last_miss = line_addr
        predicted = self._successor.get(line_addr)
        if predicted is not None:
            self._issue(predicted, cycle)


def main():
    graph = datasets.make_graph("urand", "test")
    config = SystemConfig.experiment()
    workload = PageRankWorkload(graph, iterations=3, window_size=16)
    plain = workload.build_trace(rnr=False)
    annotated = workload.build_trace(rnr=True)

    baseline = SimulationEngine(config).run(plain)
    rows = []
    for name, prefetcher, trace in (
        ("markov (yours)", MarkovPrefetcher(), plain),
        ("nextline", make_prefetcher("nextline"), plain),
        ("rnr", make_prefetcher("rnr"), annotated),
    ):
        stats = SimulationEngine(config, prefetcher).run(trace)
        rows.append(
            (
                name,
                metrics.amortized_speedup(baseline, stats),
                100 * metrics.coverage(baseline, stats),
                100 * metrics.accuracy(stats),
            )
        )
    print(format_table(("prefetcher", "speedup", "coverage %", "accuracy %"), rows))
    print("\nThe Markov table is the guts of a GHB — compare its accuracy "
          "with RnR's software-directed replay.")


if __name__ == "__main__":
    main()
